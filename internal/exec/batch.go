package exec

import (
	"sort"

	"sjos/internal/xmltree"
)

// BatchRows is the number of tuples one Batch holds: large enough to
// amortise the per-call virtual dispatch of the Volcano contract over ~1K
// tuples, small enough that a batch of the widest plans stays well inside
// the L2 cache.
const BatchRows = 1024

// Batch is a reusable block of tuples with one flat backing array: row i is
// the width-sized slice at offset i*width. Rows handed out by Row alias the
// backing array, so they are valid only until the batch is reset or
// refilled — consumers that retain tuples must copy them (see Drain's
// batched path). The caller owns the batch it passes to NextBatch;
// operators own the batches they use to read their children.
type Batch struct {
	width int
	rows  int
	buf   []xmltree.NodeID
}

// NewBatch returns an empty batch for tuples of the given width.
func NewBatch(width int) *Batch {
	return &Batch{width: width, buf: make([]xmltree.NodeID, 0, width*BatchRows)}
}

// Reset empties the batch, keeping the backing array.
func (b *Batch) Reset() { b.rows, b.buf = 0, b.buf[:0] }

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return b.rows }

// Full reports whether the batch is at capacity.
func (b *Batch) Full() bool { return b.rows >= BatchRows }

// Width returns the tuple width.
func (b *Batch) Width() int { return b.width }

// Row returns row i as a Tuple view into the backing array; it is valid
// only until the batch is reset or refilled.
func (b *Batch) Row(i int) Tuple {
	return Tuple(b.buf[i*b.width : (i+1)*b.width : (i+1)*b.width])
}

// AppendRow copies one tuple into the batch.
func (b *Batch) AppendRow(t Tuple) {
	b.buf = append(b.buf, t...)
	b.rows++
}

// AppendPair copies a join output (left tuple then right tuple) into the
// batch without materialising the concatenation anywhere else — this is
// what replaces the tuple path's per-output allocation in joined.
func (b *Batch) AppendPair(l, r Tuple) {
	b.buf = append(append(b.buf, l...), r...)
	b.rows++
}

// AppendID copies a single-column row into the batch (the scan fast path).
func (b *Batch) AppendID(id xmltree.NodeID) {
	b.buf = append(b.buf, id)
	b.rows++
}

// AppendIDs bulk-copies single-column rows into the batch.
func (b *Batch) AppendIDs(ids []xmltree.NodeID) {
	b.buf = append(b.buf, ids...)
	b.rows += len(ids)
}

// Truncate drops every row past the first n.
func (b *Batch) Truncate(n int) {
	if n < b.rows {
		b.rows = n
		b.buf = b.buf[:n*b.width]
	}
}

// BatchOperator is the vectorized iterator contract: NextBatch fills b with
// the next rows of the stream (after resetting it) and an empty batch marks
// the end of the stream. Mixing NextBatch and Next calls on one operator
// instance is not supported — the driver picks one mode at the root and the
// tree follows. On error the batch's contents are undefined.
type BatchOperator interface {
	Operator
	NextBatch(b *Batch) error
}

// batchFromTuples adapts a tuple-only operator to the batch contract by
// pulling Next in a loop. It keeps Unwrap so the seek probe can still reach
// a Seeker underneath.
type batchFromTuples struct{ Operator }

// NextBatch implements BatchOperator.
func (a batchFromTuples) NextBatch(b *Batch) error {
	b.Reset()
	for !b.Full() {
		t, ok, err := a.Operator.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		b.AppendRow(t)
	}
	return nil
}

// Unwrap exposes the adapted operator.
func (a batchFromTuples) Unwrap() Operator { return a.Operator }

// AsBatchOperator returns op itself if it is batch-native, or a
// tuple-pulling adapter otherwise, so any operator can sit under a batched
// consumer.
func AsBatchOperator(op Operator) BatchOperator {
	if bop, ok := op.(BatchOperator); ok {
		return bop
	}
	return batchFromTuples{op}
}

// Seeker is the skip-ahead contract: SeekGE discards every pending output
// row whose join-column Start position is below pos, without producing it.
// ok is false when the operator cannot seek (then nothing was consumed);
// skipped counts the index postings bypassed. Only operators whose output
// is ordered by the sought column's Start position may implement it.
type Seeker interface {
	SeekGE(pos xmltree.Pos) (skipped int, ok bool, err error)
}

// trySeek probes op (unwrapping adapters) for skip-ahead support and seeks
// if possible.
func trySeek(op any, pos xmltree.Pos) (int, bool, error) {
	for {
		if s, ok := op.(Seeker); ok {
			return s.SeekGE(pos)
		}
		u, ok := op.(interface{ Unwrap() Operator })
		if !ok {
			return 0, false, nil
		}
		op = u.Unwrap()
	}
}

// batchReader pulls one operator's output through a private batch, serving
// rows with plain slice indexing instead of a virtual call per tuple. The
// row returned by next is valid until the reader refills, which happens
// only on the next-after-last row — so the consumer may hold the current
// row across arbitrarily many of its own emissions.
type batchReader struct {
	bop   BatchOperator
	batch *Batch
	i     int
	eof   bool
}

func newBatchReader(op Operator) *batchReader {
	return &batchReader{bop: AsBatchOperator(op), batch: NewBatch(op.Schema().Width())}
}

// next returns the next row of the stream.
func (r *batchReader) next() (Tuple, bool, error) {
	if r.i < r.batch.Len() {
		t := r.batch.Row(r.i)
		r.i++
		return t, true, nil
	}
	return r.refill()
}

// refill fetches the next batch and serves its first row.
func (r *batchReader) refill() (Tuple, bool, error) {
	if r.eof {
		return nil, false, nil
	}
	if err := r.bop.NextBatch(r.batch); err != nil {
		return nil, false, err
	}
	r.i = 0
	if r.batch.Len() == 0 {
		r.eof = true
		return nil, false, nil
	}
	r.i = 1
	return r.batch.Row(0), true, nil
}

// seekGE advances the reader to the first row whose col Start position is
// >= pos: buffered rows are skipped with a binary search (the stream is
// ordered by col's Start), and once the buffer is exhausted the underlying
// operator is seeked through the Seeker interface if it supports it —
// otherwise whole batches are drained, which is still one virtual call per
// BatchRows rows rather than per row.
func (r *batchReader) seekGE(pos xmltree.Pos, doc *xmltree.Document, col int) (Tuple, bool, error) {
	for {
		if r.i < r.batch.Len() {
			n := r.batch.Len()
			j := r.i + sort.Search(n-r.i, func(k int) bool {
				return doc.Start(r.batch.Row(r.i + k)[col]) >= pos
			})
			if j < n {
				r.i = j + 1
				return r.batch.Row(j), true, nil
			}
			r.i = n
		}
		if r.eof {
			return nil, false, nil
		}
		if _, _, err := trySeek(r.bop, pos); err != nil {
			return nil, false, err
		}
		// Refill regardless of seek support; unsupported seeks fall back to
		// discarding batch-wise in the loop above.
		if err := r.bop.NextBatch(r.batch); err != nil {
			return nil, false, err
		}
		r.i = 0
		if r.batch.Len() == 0 {
			r.eof = true
			return nil, false, nil
		}
	}
}

// nodeArena allocates tuple storage in large chunks, replacing one make per
// retained tuple with one per ~16K node IDs. Allocations live until the
// arena itself is garbage, so it suits the join's stack copies and buffered
// pairs, whose lifetime is the operator's.
type nodeArena struct {
	chunk []xmltree.NodeID
}

const arenaChunk = 16 * 1024

func (a *nodeArena) alloc(n int) []xmltree.NodeID {
	if len(a.chunk)+n > cap(a.chunk) {
		sz := arenaChunk
		if n > sz {
			sz = n
		}
		a.chunk = make([]xmltree.NodeID, 0, sz)
	}
	off := len(a.chunk)
	a.chunk = a.chunk[:off+n]
	return a.chunk[off : off+n : off+n]
}

// copyTuple clones t into the arena.
func (a *nodeArena) copyTuple(t Tuple) Tuple {
	s := a.alloc(len(t))
	copy(s, t)
	return Tuple(s)
}

// joined builds the concatenation of l and r in the arena.
func (a *nodeArena) joined(l, r Tuple) Tuple {
	s := a.alloc(len(l) + len(r))
	n := copy(s, l)
	copy(s[n:], r)
	return Tuple(s)
}

// DrainBatched is Drain over the batched execution path: the plan is driven
// with NextBatch at the root (operators batch recursively), and rows are
// copied out of the reused batch into stable arena-backed tuples.
func DrainBatched(ctx *Context, op Operator) ([]Tuple, error) {
	bop := AsBatchOperator(op)
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	var (
		out   []Tuple
		arena nodeArena
		b     = NewBatch(op.Schema().Width())
	)
	for {
		if ctx.Interrupt != nil {
			if err := ctx.Interrupt(); err != nil {
				op.Close()
				return nil, err
			}
		}
		if err := bop.NextBatch(b); err != nil {
			op.Close()
			return nil, err
		}
		if b.Len() == 0 {
			break
		}
		ctx.Stats.Batches++
		for i := 0; i < b.Len(); i++ {
			out = append(out, arena.copyTuple(b.Row(i)))
		}
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	ctx.Stats.OutputTuples = len(out)
	return out, nil
}

// CountBatched is Count over the batched execution path; it never touches
// row contents, so counting costs one virtual call per batch.
func CountBatched(ctx *Context, op Operator) (int, error) {
	bop := AsBatchOperator(op)
	if err := op.Open(ctx); err != nil {
		return 0, err
	}
	n := 0
	b := NewBatch(op.Schema().Width())
	for {
		if ctx.Interrupt != nil {
			if err := ctx.Interrupt(); err != nil {
				op.Close()
				return 0, err
			}
		}
		if err := bop.NextBatch(b); err != nil {
			op.Close()
			return 0, err
		}
		if b.Len() == 0 {
			break
		}
		ctx.Stats.Batches++
		n += b.Len()
	}
	if err := op.Close(); err != nil {
		return 0, err
	}
	ctx.Stats.OutputTuples = n
	return n, nil
}
