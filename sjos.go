package sjos

import (
	"context"
	"io"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"sjos/internal/admission"
	"sjos/internal/core"
	"sjos/internal/cost"
	"sjos/internal/datagen"
	"sjos/internal/exec"
	"sjos/internal/histogram"
	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/storage"
	"sjos/internal/twigjoin"
	"sjos/internal/xmltree"
)

// Re-exported types: the facade exposes the internal packages' core types
// under stable names so downstream code only imports sjos.
type (
	// Pattern is a tree-pattern query (see ParsePattern).
	Pattern = pattern.Pattern
	// Plan is a physical evaluation plan node.
	Plan = plan.Node
	// Method selects an optimization algorithm.
	Method = core.Method
	// OptimizeResult is an optimizer outcome (plan, estimated cost,
	// search counters).
	OptimizeResult = core.Result
	// CostModel carries the cost model's normalisation factors.
	CostModel = cost.Model
	// Match is one pattern match: slot u holds the document node bound
	// to pattern node u.
	Match = exec.Tuple
	// NodeID identifies a document element node.
	NodeID = xmltree.NodeID
	// ExecStats counts the physical work of one execution.
	ExecStats = exec.Stats
	// PoolStats reports the buffer pool's page-cache behaviour.
	PoolStats = storage.PoolStats
	// ContentStats reports the store's content-index, postings-compression
	// and string-interning counters.
	ContentStats = storage.ContentStats
	// PageFile is the paged storage interface a database image lives on;
	// Options.PageFile injects a custom implementation (fault-injection
	// wrappers, alternative backends).
	PageFile = storage.PageFile
	// RetryPolicy bounds the buffer pool's read-retry loop (attempts,
	// exponential backoff, jitter); see Options.Retry.
	RetryPolicy = storage.RetryPolicy
	// CorruptPageError is the typed error a query returns when a page
	// fails checksum or header verification on every allowed attempt.
	CorruptPageError = storage.CorruptPageError
	// PanicError is the typed error Run returns for a panic recovered at
	// the query boundary; Stack holds the goroutine stack at panic time.
	PanicError = exec.PanicError
	// AdmissionStats reports the admission controller's counters.
	AdmissionStats = admission.Stats
)

// Admission-control errors, returned by Run (and Query*) without executing
// anything: ErrOverloaded when the bounded wait queue is full,
// ErrShuttingDown once Drain has begun. Both are fast-fail signals a server
// should map to a retryable status (HTTP 503).
var (
	ErrOverloaded   = admission.ErrOverloaded
	ErrShuttingDown = admission.ErrShuttingDown
)

// The optimization algorithms (see the package documentation).
const (
	MethodDP             = core.MethodDP
	MethodDPP            = core.MethodDPP
	MethodDPPNoLookahead = core.MethodDPPNoLookahead
	MethodDPAPEB         = core.MethodDPAPEB
	MethodDPAPLD         = core.MethodDPAPLD
	MethodFP             = core.MethodFP
	MethodGreedy         = core.MethodGreedy
)

// ParsePattern parses the XPath-like twig syntax (see the package docs).
func ParsePattern(src string) (*Pattern, error) { return pattern.Parse(src) }

// MinimizePattern removes redundant branches from a pattern before
// optimization — the schema-free tree-pattern minimisation of Amer-Yahia
// et al. (SIGMOD 2001), which the paper cites as the rewrite step
// complementary to cost-based join ordering. It returns the reduced
// pattern and a mapping from original node indexes to new ones (-1 for
// removed nodes); the match set, projected onto retained nodes, is
// unchanged.
func MinimizePattern(p *Pattern) (*Pattern, []int) { return pattern.Minimize(p) }

// MustParsePattern is ParsePattern that panics on error.
func MustParsePattern(src string) *Pattern { return pattern.MustParse(src) }

// ParseMethod resolves an algorithm name ("DP", "DPP", "DPP'", "DPAP-EB",
// "DPAP-LD", "FP", "Greedy"). Matching is case-insensitive and "G" is
// accepted as a Greedy shorthand; unknown names get an error that lists
// every valid name.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// MethodNames lists every optimizer name ParseMethod accepts, in the
// conventional order (the cost-based family first, then Greedy).
func MethodNames() []string { return core.MethodNames() }

// Options configures database construction.
type Options struct {
	// PoolFrames sizes the buffer pool (8 KB frames). 0 means the
	// default 2048 frames = 16 MB, the paper's SHORE configuration.
	PoolFrames int
	// HistogramGrid is the positional histogram resolution (0 = default).
	HistogramGrid int
	// Model overrides the cost model. The zero value selects the built-in
	// defaults; use sjos.CalibrateModel for machine-specific factors.
	Model CostModel
	// DiskPath, when non-empty, stores the paged database image in a
	// file at this path instead of in memory, so all page access through
	// the buffer pool becomes real file I/O.
	DiskPath string
	// PlanCacheCapacity bounds the plan cache (entries, LRU). 0 selects
	// the default capacity; negative values are clamped to 1.
	PlanCacheCapacity int
	// PageFile, when non-nil, stores the paged database image on this
	// file instead of memory or DiskPath — the injection point for fault
	// wrappers (see internal/faultfs) and alternative backends. It takes
	// precedence over DiskPath.
	PageFile PageFile
	// Retry overrides the buffer pool's read-retry policy (transient I/O
	// failures and checksum mismatches are retried under bounded
	// exponential backoff). The zero value keeps the default policy
	// (4 attempts, 200µs base delay); MaxAttempts: 1 disables retries.
	Retry RetryPolicy
	// MaxInFlight > 0 bounds how many queries execute concurrently;
	// arrivals past the limit wait (up to QueueDepth of them), and past
	// that fail fast with ErrOverloaded. 0 means unlimited.
	MaxInFlight int
	// QueueDepth bounds how many queries may wait for an execution slot
	// when MaxInFlight is set (0 = no waiting: the limit fails fast).
	QueueDepth int
	// NoValueIndex skips building the (tag, value) content index at store
	// construction. Value predicates then always execute as scan+filter;
	// per-query opt-out is QueryOptions.NoValueIndex.
	NoValueIndex bool
	// WALFile, when non-nil, enables the document-level write path (Insert,
	// Delete, Replace, Compact) backed by a write-ahead log on this page
	// file. Every mutation is logged as a redo transaction (begin, page
	// after-images, commit) sealed with the store's page checksums and
	// fsynced before it is applied, so a crash at any point leaves the
	// database fully pre- or fully post-commit. Opening with a WAL that
	// already holds committed transactions recovers the state from the log
	// (see OpenDatabase); the store file is treated as a rebuildable cache
	// and must be empty/fresh at open.
	WALFile PageFile
	// WALPath is the convenience form of WALFile: when non-empty (and
	// WALFile is nil) the write-ahead log lives in a disk file at this
	// path — opened if the file exists (recovering its committed state),
	// created fresh otherwise.
	WALPath string
	// CompactThreshold is the dead-node fraction past which a Delete or
	// Replace triggers automatic compaction of the segmented store
	// (0 selects DefaultCompactThreshold; negative disables auto-compaction;
	// Compact can always be called explicitly). Ignored without WALFile.
	CompactThreshold float64
	// CompactFile supplies the fresh page file each compaction rebuilds the
	// store onto (nil selects in-memory files). Ignored without WALFile.
	CompactFile func() PageFile
}

func (o *Options) model() CostModel {
	if o != nil && o.Model.Valid() {
		return o.Model
	}
	return cost.DefaultModel()
}

// CalibrateModel measures cost model factors on the current machine.
func CalibrateModel() CostModel { return cost.Calibrate() }

// dbSnap is one immutable (document, store) version of a database. Static
// databases have exactly one; an ingestion-enabled database (Options.WALFile)
// publishes a fresh snapshot per committed mutation, and every query pins one
// snapshot for its whole run — readers never observe a half-applied write.
type dbSnap struct {
	doc   *xmltree.Document
	store *storage.Store
	// members lists the live member documents in node-range order, and
	// memberIdx finds one by ID. Both are nil for static databases; for
	// ingestion-enabled ones they are the membership view consistent with
	// exactly this store version (the corpus demux depends on that).
	members   []memberView
	memberIdx map[string]int
}

// memberView is one live member's identity and node range inside a snapshot.
type memberView struct {
	id   string
	span xmltree.DocSpan
}

// dbState is the immutable-identity core of a Database: the current
// (document, store) snapshot and the shared service. Derived handles
// (WithParallelism) share one dbState pointer, so cached plans, statistics,
// metrics and admission control are one per database — a derived handle
// differs only in its execution settings.
type dbState struct {
	// snap is the current published snapshot; mutations replace it
	// atomically after commit, so reads are lock-free.
	snap  atomic.Pointer[dbSnap]
	model CostModel

	// svc holds the mutable shared state — statistics (replaceable via
	// RebuildStats), the plan cache, metrics, the slow-query log and
	// admission control — behind one pointer.
	svc *service

	// ingest is the write path's state (WAL, forest, member table); nil for
	// databases built without Options.WALFile.
	ingest *ingestState
}

// view returns the current snapshot. Callers that touch both the document
// and the store of one logical version must call view once and use the
// returned pair.
func (st *dbState) view() *dbSnap { return st.snap.Load() }

// Database is a loaded, indexed XML document ready for querying. The
// zero parallelism (the default for every constructor) executes plans
// serially; see WithParallelism. For many documents behind one query
// surface, see Corpus — Database is the single-document convenience.
type Database struct {
	*dbState

	// parallelism > 0 routes Run (and therefore Query) through the
	// partition-parallel driver with that many workers. 0 = serial.
	parallelism int
}

// LoadXML parses an XML document from r and builds its store, indexes and
// statistics.
func LoadXML(r io.Reader, opts *Options) (*Database, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return fromDocument(doc, opts)
}

// LoadXMLString is LoadXML over a string.
func LoadXMLString(s string, opts *Options) (*Database, error) {
	return LoadXML(strings.NewReader(s), opts)
}

// SaveImage writes the database's document as a binary image to w. Load it
// back with OpenImage; indexes and statistics are rebuilt deterministically
// on load.
func (db *Database) SaveImage(w io.Writer) error {
	return xmltree.WriteImage(db.view().doc, w)
}

// SaveImageFile is SaveImage to a file path.
func (db *Database) SaveImageFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.SaveImage(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenImage loads a database from a binary image written by SaveImage.
func OpenImage(r io.Reader, opts *Options) (*Database, error) {
	doc, err := xmltree.ReadImage(r)
	if err != nil {
		return nil, err
	}
	return fromDocument(doc, opts)
}

// OpenImageFile is OpenImage from a file path.
func OpenImageFile(path string, opts *Options) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return OpenImage(f, opts)
}

// GenerateDataset builds one of the synthetic benchmark data sets
// ("mbench", "dblp", "pers") at the given scale (1 = base size; see
// DESIGN.md) and folding factor (≤ 1 = unfolded, as in the paper's §4.3).
func GenerateDataset(name string, scale float64, fold int, opts *Options) (*Database, error) {
	doc, err := datagen.Generate(datagen.Config{Name: name, Scale: scale})
	if err != nil {
		return nil, err
	}
	doc = xmltree.Fold(doc, fold)
	return fromDocument(doc, opts)
}

// storeFile resolves the page file a database image lives on: an injected
// PageFile, a fresh disk file at DiskPath, or memory.
func storeFile(opts *Options) (PageFile, error) {
	if opts != nil && opts.PageFile != nil {
		return opts.PageFile, nil
	}
	if opts != nil && opts.DiskPath != "" {
		return storage.CreateDiskFile(opts.DiskPath)
	}
	return storage.NewMemFile(), nil
}

// NewMemPageFile returns a fresh in-memory page file — the simplest
// Options.WALFile / CorpusOptions.ShardWALFile for tests and ephemeral
// writable databases.
func NewMemPageFile() PageFile { return storage.NewMemFile() }

// CreatePageFile creates (truncating if present) a disk-backed page file at
// path, suitable for Options.PageFile, Options.WALFile or
// CorpusOptions.ShardWALFile.
func CreatePageFile(path string) (PageFile, error) { return storage.CreateDiskFile(path) }

// OpenPageFile opens an existing disk-backed page file at path — the
// recovery counterpart of CreatePageFile.
func OpenPageFile(path string) (PageFile, error) { return storage.OpenDiskFile(path) }

// resolveWALFile returns the WAL page file selected by opts: WALFile wins;
// otherwise WALPath is opened if the file exists (recovery) or created
// fresh. nil means no write path.
func resolveWALFile(opts *Options) (PageFile, error) {
	if opts == nil {
		return nil, nil
	}
	if opts.WALFile != nil {
		return opts.WALFile, nil
	}
	if opts.WALPath == "" {
		return nil, nil
	}
	if _, err := os.Stat(opts.WALPath); err == nil {
		return storage.OpenDiskFile(opts.WALPath)
	}
	return storage.CreateDiskFile(opts.WALPath)
}

func fromDocument(doc *xmltree.Document, opts *Options) (*Database, error) {
	wal, err := resolveWALFile(opts)
	if err != nil {
		return nil, err
	}
	if wal != nil {
		// Ingestion-enabled: the document becomes the first member of an
		// appendable forest, under the reserved seed ID.
		wopts := *opts
		wopts.WALFile = wal
		return buildIngestDatabase([]seedDoc{{id: SeedDocID, doc: doc}}, &wopts)
	}
	poolFrames, grid, cacheCap := 0, 0, 0
	var retry RetryPolicy
	maxInFlight, queueDepth := 0, 0
	var sopts storage.StoreOptions
	if opts != nil {
		poolFrames, grid = opts.PoolFrames, opts.HistogramGrid
		cacheCap = opts.PlanCacheCapacity
		retry = opts.Retry
		maxInFlight, queueDepth = opts.MaxInFlight, opts.QueueDepth
		sopts.NoValueIndex = opts.NoValueIndex
	}
	pageFile, err := storeFile(opts)
	if err != nil {
		return nil, err
	}
	store, err := storage.BuildStoreOnOpts(pageFile, doc, poolFrames, sopts)
	if err != nil {
		return nil, err
	}
	if retry != (RetryPolicy{}) {
		store.Pool().SetRetryPolicy(retry)
	}
	svc := newService(histogram.Build(doc, grid), grid, cacheCap)
	svc.admit = admission.New(maxInFlight, queueDepth)
	db := &Database{
		dbState: &dbState{
			model: opts.model(),
			svc:   svc,
		},
	}
	db.snap.Store(&dbSnap{doc: doc, store: store})
	return db, nil
}

// NumNodes returns the number of element nodes in the database.
func (db *Database) NumNodes() int { return db.view().doc.NumNodes() }

// TagName returns the element tag of a matched node.
func (db *Database) TagName(id NodeID) string {
	doc := db.view().doc
	return doc.TagName(doc.Tag(id))
}

// Value returns the text value of a matched node ("" if none).
func (db *Database) Value(id NodeID) string { return db.view().doc.Value(id) }

// Model returns the database's cost model.
func (db *Database) Model() CostModel { return db.model }

// Optimize picks a plan for pat with the chosen algorithm. te is the
// DPAP-EB expansion bound (0 = the number of pattern edges, the paper's
// Table 1 setting); it is ignored by other methods. Optimize always runs
// the optimizer (it neither consults nor populates the plan cache), so
// repeated calls measure real search effort; cached optimization is the
// QueryContext path.
func (db *Database) Optimize(pat *Pattern, m Method, te int) (*OptimizeResult, error) {
	return db.OptimizeContext(context.Background(), pat, m, te)
}

// OptimizeContext is Optimize under a context: cancelling ctx aborts the
// plan search (all algorithms poll it) and returns ctx's error.
func (db *Database) OptimizeContext(ctx context.Context, pat *Pattern, m Method, te int) (*OptimizeResult, error) {
	stats, _ := db.svc.snapshot()
	return optimizeWith(ctx, pat, stats, db.model, m, te, db.view().store)
}

// OptimizeWithExactStats is Optimize with the oracle estimator: exact
// per-node candidate counts and per-edge join selectivities computed from
// the document, instead of positional-histogram estimates. It isolates the
// effect of estimation error on plan choice (the A2 ablation in DESIGN.md)
// and is too expensive for routine use.
func (db *Database) OptimizeWithExactStats(pat *Pattern, m Method, te int) (*OptimizeResult, error) {
	est, err := core.NewOracleEstimator(pat, db.view().doc)
	if err != nil {
		return nil, err
	}
	return core.Optimize(context.Background(), pat, est, db.model, m, &core.Options{Te: te})
}

// BadPlan returns the estimated-worst of `samples` random valid plans —
// the paper's §4.2.1 baseline for quantifying optimizer value.
func (db *Database) BadPlan(pat *Pattern, samples int, seed int64) (*OptimizeResult, error) {
	stats, _ := db.svc.snapshot()
	est, err := core.NewEstimator(pat, stats)
	if err != nil {
		return nil, err
	}
	return core.BadPlan(pat, est, db.model, samples, seed)
}

// WithParallelism returns a derived handle whose Run (and therefore Query)
// executes plans through the partition-parallel driver with k workers: the
// document is split into k region ranges balanced by postings weight, an
// independent clone of the plan runs per range on a bounded worker pool,
// and the partition outputs are concatenated in document order — the same
// matches, in the same order, as serial execution. k <= 0 selects
// runtime.GOMAXPROCS(0). The receiver is unchanged (and stays serial).
// Derived handles share the database's state — store, statistics, plan
// cache, metrics, slow-query log and admission control — so a plan cached
// through one handle is served to all, and the in-flight limit is per
// database, not per handle. Handles are safe for concurrent use.
func (db *Database) WithParallelism(k int) *Database {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	return &Database{dbState: db.dbState, parallelism: k}
}

// Parallelism reports the worker count queries run with (0 = serial).
func (db *Database) Parallelism() int { return db.parallelism }

// PoolStats returns a snapshot of the buffer pool's cumulative hit/miss
// counters for this database's store (shared by all parallelism views).
func (db *Database) PoolStats() PoolStats { return db.view().store.PoolStats() }

// ContentStats returns a snapshot of the store's content-index,
// postings-compression and string-interning counters (shared by all
// parallelism views).
func (db *Database) ContentStats() ContentStats { return db.view().store.ContentStats() }

// AdmissionStats returns the admission controller's counters (all zero when
// no MaxInFlight was configured). Shared by all parallelism views.
func (db *Database) AdmissionStats() AdmissionStats { return db.svc.admit.Stats() }

// Drain flips the database into shutdown: queries arriving after Drain
// begins fail fast with ErrShuttingDown, and Drain returns once every
// in-flight query has finished — or ctx's error if they have not by then
// (calling Drain again resumes waiting). Without a configured MaxInFlight
// there is no admission barrier and Drain returns immediately; it is the
// graceful-exit step for servers built with one (see cmd/xqserve).
func (db *Database) Drain(ctx context.Context) error { return db.svc.admit.Drain(ctx) }

// TwigStack evaluates pat with the holistic twig join (the multi-way
// alternative of Bruno et al. that the paper cites as future work), for
// comparison against the structural-join plans.
func (db *Database) TwigStack(pat *Pattern) ([]Match, error) {
	ms, _, err := twigjoin.Run(db.view().doc, pat)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match(m)
	}
	return out, err
}

// QueryResult is the outcome of a one-shot Query call.
type QueryResult struct {
	// Matches holds all pattern matches in pattern-node order.
	Matches []Match
	// Plan is the executed plan; PlanText its rendering.
	Plan     *Plan
	PlanText string
	// EstCost is the optimizer's estimate for the plan.
	EstCost float64
	// CachedPlan reports whether the plan came from the plan cache (or a
	// coalesced in-flight optimization) instead of a fresh optimizer run.
	CachedPlan bool
	// OptimizeTime and ExecuteTime split the total latency the way the
	// paper's Table 1 reports it.
	OptimizeTime time.Duration
	ExecuteTime  time.Duration
	// PlansConsidered is the optimizer's search effort (Table 2).
	PlansConsidered int
	// Exec reports the physical work done.
	Exec ExecStats
	// Trace is the per-operator execution trace (nil unless
	// QueryOptions.Trace was set or a slow-query log is active).
	Trace *OpTrace
}

// Query parses src, optimizes it with method m and executes the chosen
// plan. It is QueryContext with a background context and default options,
// so structurally recurring queries are served from the plan cache.
func (db *Database) Query(src string, m Method) (*QueryResult, error) {
	return db.QueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: m}})
}

// QueryPattern is Query for an already-built pattern.
func (db *Database) QueryPattern(pat *Pattern, m Method) (*QueryResult, error) {
	return db.QueryPatternContext(context.Background(), pat, QueryOptions{ExecOptions: ExecOptions{Method: m}})
}
