# Build, test and benchmark entry points. `make check` is the CI gate:
# go vet plus the full suite under the race detector. `make bench` runs the
# tier-1 suite under the race detector first, then emits benchmark results
# as streamed test2json events into BENCH_parallel.json, the plan-cache
# cold/warm comparison into BENCH_plancache.json, the batched-vs-tuple
# executor comparison into BENCH_batch.json and the value-index pushdown
# comparison into BENCH_content.json. `make benchquick` smoke-runs the key
# benchmarks at one iteration each (plus the allocs/op regression guard) —
# a CI-friendly check that they still build, run and validate their counts.
# `make loadbench` runs the open-loop corpus serving benchmark (Poisson
# arrivals, p50/p95/p99 under load) into BENCH_corpus.json; `make loadquick`
# is its short CI variant (run on the replicated, hedged path so routing
# stays covered). `make plannerbench` runs the planning-cost lane — optimize
# time vs resulting execution time for every method, including the
# statistics-free Greedy orderer — into BENCH_planner.json; `make
# plannerquick` is its CI smoke variant. `make replicabench` compares hedged vs unhedged tail
# latency with one slow replica per shard into BENCH_replica.json;
# `make replicachaos` is the replica fault-injection suite under the race
# detector (a dead replica per shard must never change query results).
# `make walchaos` is the write-path crash suite: the kill-point matrix over
# every WAL write ordinal, torn-tail recovery, and the corpus ingestion
# suite, all under the race detector. `make churnbench` measures query
# latency under concurrent WAL-committed document churn into
# BENCH_churn.json; `make churnquick` is its CI smoke variant.
#
# BENCH selects the benchmark regexp (default: the partition-parallel
# executor benches; use BENCH=. for the full table/figure suite — slow).

GO    ?= go
BENCH ?= Parallel

.PHONY: all build test test-race vet check chaos replicachaos walchaos bench benchquick loadbench loadquick replicabench replicaquick plannerbench plannerquick churnbench churnquick clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: vet test-race

# Fault-injection differential suite under the race detector: every
# optimizer method over an injected-fault store must return the exact
# fault-free result or a typed error — never a wrong answer or a panic.
chaos:
	$(GO) test -race -run 'TestChaos|TestRunRecovers|TestAdmission|TestDrain|TestQueryPath|TestWriteMetricsResilience' .
	$(GO) test -race -run 'ParallelExecReleasesPins|ParallelExecRecoversWorkerPanics|PropagatesStorageErrors' ./internal/exec/
	$(GO) test -race ./internal/faultfs/ ./internal/admission/

# Replica fault-injection suite: kill one replica of every shard, hedge,
# fail over, recover through probation probes — all under the race detector,
# with results compared byte-for-byte against a fault-free corpus.
replicachaos:
	$(GO) test -race -count=1 -run 'TestCorpusReplica|TestCorpusLimitErrorRace|TestAsCorpusRebuildStats' .
	$(GO) test -race -count=1 ./internal/replica/

# Write-path crash suite under the race detector: crash the process at
# every WAL write ordinal (and with a torn final write, and with a crashed
# store file) across all five paper methods in batched and tuple-at-a-time
# execution; recovery must land on a committed prefix every time.
walchaos:
	$(GO) test -race -count=1 -run 'TestWALChaos|TestWAL|TestIngest|TestOpenDatabase|TestCorpusIngest' .
	$(GO) test -race -count=1 ./internal/storage/

bench: test-race
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -json . | tee BENCH_parallel.json
	$(GO) test -run '^$$' -bench 'PlanCache' -benchmem -json . | tee BENCH_plancache.json
	$(GO) test -run '^$$' -bench 'BatchExecute$$' -benchmem -json . | tee BENCH_batch.json
	$(GO) test -run '^$$' -bench 'ContentIndex' -benchmem -json . | tee BENCH_content.json
	$(GO) run ./cmd/xqbench -plannerbench
	$(GO) run ./cmd/xqbench -loadbench
	$(GO) run ./cmd/xqbench -churnbench

# Planning-cost lane: optimize time and resulting execution time for every
# optimizer method (DP, DPP, DPAP-EB, DPAP-LD, FP, Greedy) on the Table-3
# workloads plus deep-chain/wide-fanout stress shapes, into
# BENCH_planner.json. plannerquick is the CI smoke variant.
plannerbench:
	$(GO) run ./cmd/xqbench -plannerbench

plannerquick:
	$(GO) run ./cmd/xqbench -plannerquick -plannerout ""

benchquick:
	$(GO) test -run '^$$' -bench 'ParallelExecute|PlanCache|BatchExecute$$|ContentIndex|ObservabilityOverhead' -benchtime=1x .
	$(GO) test -run 'TestBatchedProbeAllocs' -v .

# Open-loop corpus serving benchmark: Poisson arrivals against a sharded
# corpus, latency measured from arrival (queueing included), results into
# BENCH_corpus.json. loadquick is the CI smoke variant: small corpus, short
# load phase, still asserting completed queries and a clean drain.
loadbench:
	$(GO) run ./cmd/xqbench -loadbench

loadquick:
	$(GO) run ./cmd/xqbench -loadbench -loaddocs 4 -loadshards 2 -loadrate 50 -loadduration 1s -loadclients 4 -loadreplicas 2

# Hedged-vs-unhedged tail comparison: a replicated corpus with one slow
# replica per shard serves the same Poisson load twice, into
# BENCH_replica.json. replicaquick is the CI smoke variant.
replicabench:
	$(GO) run ./cmd/xqbench -replicabench

replicaquick:
	$(GO) run ./cmd/xqbench -replicabench -loaddocs 2 -loadshards 1 -loadrate 100 -loadduration 500ms -loadclients 4 -replicaslow 200us -replicahedge 1ms

# Ingestion churn lane: an open-loop query stream and an open-loop mutation
# stream (WAL-committed inserts/replaces/deletes of whole documents) against
# one writable corpus, into BENCH_churn.json. The run fails on any query or
# mutation error, on a ledger/corpus mismatch, or if incremental statistics
# diverge from a full rebuild. churnquick is the CI smoke variant.
churnbench:
	$(GO) run ./cmd/xqbench -churnbench

churnquick:
	$(GO) run ./cmd/xqbench -churnquick -churnout ""

clean:
	rm -f BENCH_parallel.json BENCH_plancache.json BENCH_batch.json BENCH_content.json BENCH_corpus.json BENCH_replica.json BENCH_planner.json BENCH_churn.json
