package sjos

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sjos/internal/admission"
	"sjos/internal/core"
	"sjos/internal/exec"
	"sjos/internal/histogram"
	"sjos/internal/metrics"
	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/plancache"
	"sjos/internal/xmltree"
)

// CacheStats is a snapshot of the plan cache's behaviour counters.
type CacheStats = plancache.Stats

// service is the shared query-service state behind a Database (and all of
// its WithParallelism views) or a Corpus: the statistics (replaceable by
// RebuildStats), the plan cache, metrics, the slow-query log and admission
// control. Handles are copied by WithParallelism, so anything mutable must
// live here, behind the shared pointer. The statistics are an abstract
// StatsSource: a single document's positional histograms for a Database,
// the merged corpus-wide view for a Corpus.
type service struct {
	mu           sync.RWMutex
	stats        core.StatsSource
	statsVersion uint64
	grid         int

	cache *plancache.Cache[cachedPlan]

	// metrics accumulates process-wide query counters; slow holds the
	// slow-query log configuration and ring buffer. Both are shared by
	// all WithParallelism views.
	metrics metrics.Registry
	slow    slowLog

	// admit bounds concurrent executions (nil = unlimited). Shared by all
	// WithParallelism views so the limit is per database, not per view.
	admit *admission.Controller

	// driftEvicted remembers cache keys already evicted once by the
	// adaptive drift check (see noteDrift). Re-planning with unchanged
	// statistics reproduces the same plan and the same drift, so without
	// this guard every warm hit of a drifting shape would evict again and
	// the cache would be effectively disabled for it; with it, each
	// (fingerprint, stats version) is re-planned exactly once. Cleared by
	// setStats — new statistics deserve a fresh verdict. Guarded by mu.
	driftEvicted map[plancache.Key]struct{}

	// testHookRun, when non-nil, runs inside every Run's recovery scope —
	// white-box tests use it to inject panics at the query boundary.
	testHookRun func()
}

// cachedPlan is one cache entry. The plan is stored in the fingerprint's
// canonical node numbering so one entry serves every renumbering of the
// same query shape; hits remap it back into the caller's numbering.
type cachedPlan struct {
	plan     *plan.Node
	cost     float64
	algo     string
	counters core.Counters
}

func newService(stats core.StatsSource, grid, cacheCapacity int) *service {
	return &service{
		stats: stats,
		grid:  grid,
		cache: plancache.New[cachedPlan](cacheCapacity),
	}
}

// snapshot returns the current statistics and their version under one lock,
// so an optimization run sees a consistent (stats, version) pair even if
// RebuildStats runs concurrently.
func (s *service) snapshot() (core.StatsSource, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats, s.statsVersion
}

// setStats replaces the statistics and makes every cached plan unreachable:
// the version bump changes all future cache keys, and Clear drops the now
// dead entries immediately rather than waiting for LRU pressure.
func (s *service) setStats(stats core.StatsSource) {
	s.mu.Lock()
	s.stats = stats
	s.statsVersion++
	s.driftEvicted = nil
	s.mu.Unlock()
	s.cache.Clear()
}

// rebuild recomputes single-document statistics at the service's grid
// resolution and installs them via setStats.
func (s *service) rebuild(doc *xmltree.Document) {
	s.setStats(histogram.Build(doc, s.grid))
}

// RebuildStats recomputes the statistics from scratch and invalidates the
// plan cache: for a static database the positional histograms of its
// document (at the construction-time grid resolution); for an
// ingestion-enabled one, every live member's histograms rebuilt from its
// document and re-merged — the ground truth the incrementally maintained
// statistics must match. Plans optimized before the rebuild remain
// executable; they are simply no longer served from the cache. Shared by
// all WithParallelism views.
func (db *Database) RebuildStats() {
	if db.ingest != nil {
		db.ingest.mu.Lock()
		defer db.ingest.mu.Unlock()
		db.rebuildIngestStatsLocked()
		return
	}
	db.svc.rebuild(db.view().doc)
}

// CacheStats returns a snapshot of the plan cache's counters (shared by all
// WithParallelism views of this database).
func (db *Database) CacheStats() CacheStats {
	return db.svc.cache.Stats()
}

// optimizePattern is the cached optimize step behind QueryPatternContext —
// for both Database and Corpus, which differ only in the statistics the
// service holds and the probe-eligibility source they pass: structurally
// equivalent patterns (same shape, tags, axes, predicates — regardless of
// node numbering) share one cache entry per (method, bound, statistics
// version). Concurrent misses on the same key run the optimizer once. The
// boolean reports whether the plan came from the cache (or from a coalesced
// in-flight optimization) rather than a fresh optimizer run. The returned
// key identifies the plan's cache entry (nil for uncached runs) so the
// adaptive drift check can evict exactly this plan after execution.
func (s *service) optimizePattern(ctx context.Context, pat *Pattern, model CostModel, pe core.ProbeEligibility, m Method, te int, noCache, noVidx bool) (*OptimizeResult, bool, *plancache.Key, error) {
	stats, ver := s.snapshot()
	// Predicate pushdown: unless disabled for this call, the optimizer may
	// choose value-index probes for eligible predicated leaves. The store's
	// eligibility is part of the plan, so the cache key carries the flag.
	if noVidx {
		pe = nil
	}
	if noCache {
		res, err := optimizeWith(ctx, pat, stats, model, m, te, pe)
		return res, false, nil, err
	}
	fp, canon := pattern.Fingerprint(pat)
	keyTe := 0
	if m == MethodDPAPEB {
		// Normalise the bound the way core.Optimize resolves it, so te=0
		// and te=NumEdges share an entry while other methods ignore te
		// entirely instead of fragmenting the cache.
		keyTe = te
		if keyTe == 0 {
			keyTe = pat.NumEdges()
		}
	}
	k := plancache.Key{Fingerprint: fp, Method: int(m), Te: keyTe, StatsVersion: ver, NoVidx: noVidx}
	cp, cached, err := s.cache.GetOrCompute(ctx, k, func() (cachedPlan, error) {
		res, err := optimizeWith(ctx, pat, stats, model, m, te, pe)
		if err != nil {
			return cachedPlan{}, err
		}
		return cachedPlan{
			plan:     plan.Remap(res.Plan, canon),
			cost:     res.Cost,
			algo:     res.Algorithm,
			counters: res.Counters,
		}, nil
	})
	if err != nil {
		return nil, false, nil, err
	}
	// Remap the canonical plan into this caller's node numbering. The
	// remap deep-copies, so cached plans are never shared mutably.
	inv := pattern.InversePermutation(canon)
	return &OptimizeResult{
		Plan:      plan.Remap(cp.plan, inv),
		Cost:      cp.cost,
		Algorithm: cp.algo,
		Counters:  cp.counters,
	}, cached, &k, nil
}

// DefaultAdaptiveDrift is the est-vs-actual drift ratio past which a traced
// cached plan is evicted and re-planned (see ExecOptions.AdaptiveDrift). A
// worst operator off by under one order of magnitude rarely changes the
// chosen join order, so the default only reacts to gross mis-estimates.
const DefaultAdaptiveDrift = 8.0

// noteDrift closes the adaptive loop after one executed query: when the run
// was traced, served by a cached plan, and its worst per-operator
// est-vs-actual drift reaches the threshold, the plan's cache entry is
// evicted so the next arrival of this query shape re-plans. Each cache key
// is evicted at most once per statistics version (see driftEvicted);
// limited runs are skipped because early termination understates actual
// row counts.
func (s *service) noteDrift(key *plancache.Key, cached bool, opts ExecOptions, trace *OpTrace) {
	if key == nil || !cached || trace == nil || opts.AdaptiveDrift < 0 || opts.Limit > 0 {
		return
	}
	thr := opts.AdaptiveDrift
	if thr < 1 {
		thr = DefaultAdaptiveDrift
	}
	worst, _ := trace.MaxDrift()
	if worst < thr {
		return
	}
	s.mu.Lock()
	if _, dup := s.driftEvicted[*key]; dup {
		s.mu.Unlock()
		return
	}
	if s.driftEvicted == nil || len(s.driftEvicted) >= driftGuardCap {
		s.driftEvicted = make(map[plancache.Key]struct{})
	}
	s.driftEvicted[*key] = struct{}{}
	s.mu.Unlock()
	if s.cache.Invalidate(*key) {
		s.metrics.DriftEviction()
	}
}

// driftGuardCap bounds the once-per-key drift guard; past it the guard
// resets wholesale (allowing rare double evictions) rather than growing
// without bound across many distinct query shapes.
const driftGuardCap = 4096

// optimizeWith runs one optimizer pass against an explicit statistics
// snapshot. pe, when non-nil, lets the estimator offer value-index probes
// for eligible predicated leaves (nil keeps every leaf on scan+filter).
func optimizeWith(ctx context.Context, pat *Pattern, stats core.StatsSource, model CostModel, m Method, te int, pe core.ProbeEligibility) (*OptimizeResult, error) {
	if m == MethodGreedy {
		// The statistics-free orderer plans straight from the stats surface:
		// no estimator, no search space — planning stays sub-microsecond.
		return core.GreedyFromStats(ctx, pat, stats, pe, model)
	}
	est, err := core.NewEstimator(pat, stats)
	if err != nil {
		return nil, err
	}
	est.EnableValueIndex(pe)
	return core.Optimize(ctx, pat, est, model, m, &core.Options{Te: te})
}

// ExecOptions is the execution-tuning surface shared by every query entry
// point — Database and Corpus take identical option shapes: RunOptions and
// QueryOptions both embed it. Plan-execution entry points (Run) read Limit,
// Trace and NoBatch and ignore the optimizer fields (Method, Te, NoCache,
// NoValueIndex), which only apply where a plan is being chosen
// (QueryContext and friends). The zero value optimizes with DP, executes
// without a limit, uses the plan cache, the batched executor and the value
// index.
type ExecOptions struct {
	// Method selects the optimization algorithm (zero value: MethodDP).
	// Ignored by Run, which executes an already-chosen plan.
	Method Method
	// Te is the DPAP-EB expansion bound (0 = number of pattern edges);
	// other methods — and Run — ignore it.
	Te int
	// Limit > 0 stops execution after that many matches — the online
	// querying mode motivating the FP algorithm (§3.4). 0 means all.
	Limit int
	// Trace enables per-operator instrumentation: wall time, Next calls
	// and output rows per plan operator, reported in the result. It costs
	// two clock reads per operator per tuple; leave it off on hot paths
	// (disabled tracing adds no per-operator work). On the batched path
	// (the default) the instrumentation is per batch, so tracing there is
	// near-free.
	Trace bool
	// NoCache bypasses the plan cache (no lookup, no insertion) — used by
	// benchmarks that must measure a cold optimizer run. Ignored by Run.
	NoCache bool
	// NoBatch disables the batched (vectorized) execution path and runs
	// the plan tuple-at-a-time. Batched execution produces identical
	// results; this is an escape hatch for debugging and A/B measurement.
	NoBatch bool
	// NoValueIndex keeps the optimizer from choosing value-index probes:
	// every predicated leaf scans its tag and filters. Escape hatch for
	// debugging and A/B measurement, mirroring NoBatch. Ignored by Run.
	NoValueIndex bool
	// AdaptiveDrift tunes the adaptive plan feedback loop. After a traced
	// query served by a cached plan, the worst per-operator est-vs-actual
	// drift ratio (see OpTrace.MaxDrift) is compared against this
	// threshold; at or past it the plan's cache entry is evicted so the
	// next arrival of the shape re-plans. 0 (the zero value) applies the
	// default threshold DefaultAdaptiveDrift — the loop is on by default
	// for cached plans; values in (0, 1) are treated as the default; < 0
	// disables the check for this call. Untraced queries (tracing off and
	// no slow-query log) and limited runs are never checked, so the
	// default hot path pays nothing. Each cached entry is evicted at most
	// once per statistics version, preventing evict/re-plan ping-pong when
	// re-planning reproduces the same estimates. Ignored by Run.
	AdaptiveDrift float64
}

// RunOptions tunes one Run call. The zero value executes the whole plan
// with the handle's configured parallelism and returns all matches. Of the
// embedded ExecOptions, Run reads Limit, Trace and NoBatch; the optimizer
// fields are ignored (the plan is already chosen).
type RunOptions struct {
	ExecOptions
	// Workers selects the execution mode: 0 uses the handle's configured
	// parallelism (serial by default; see WithParallelism), > 0 forces the
	// partition-parallel driver with that many workers, < 0 forces
	// partition-parallel with runtime.GOMAXPROCS(0) workers.
	Workers int
	// CountOnly suppresses match materialisation; only the result's Count
	// (and the statistics) are populated.
	CountOnly bool
}

// RunResult is the outcome of one Run call.
type RunResult struct {
	// Matches holds the matches in pattern-node order (nil if CountOnly).
	Matches []Match
	// Count is the number of matches produced (len(Matches) unless
	// CountOnly).
	Count int
	// Stats reports the physical work done.
	Stats ExecStats
	// Trace is the per-operator execution trace (nil unless
	// RunOptions.Trace was set). Under parallel execution the counters
	// merge every partition clone of each operator.
	Trace *OpTrace
}

// Run executes a plan for pat under ctx. It is the single execution entry
// point: limits, count-only projection, per-operator tracing and serial
// versus partition-parallel mode are all RunOptions, and every mode
// observes ctx — cancelling it makes Run return promptly with ctx's error
// (index scans, buffer-pool retry waits and output loops poll it; parallel
// workers are cancelled). A nil ctx is treated as context.Background().
// Serial and parallel modes produce the same matches in the same document
// order. Every Run is observed by the database's metrics registry (queries
// served, in-flight gauge, latency histogram; see Metrics).
//
// Run is also the resilience boundary. When the database was built with an
// in-flight limit (Options.MaxInFlight) each call first claims an admission
// slot, waiting in the bounded queue; past the queue it fails fast with
// ErrOverloaded, and after Drain began with ErrShuttingDown. A panic
// anywhere under Run — optimizer bug, corrupted operator state — is
// recovered into a *PanicError (stack attached, counted in metrics and
// recorded in the slow-query ring) instead of crashing the process.
func (db *Database) Run(ctx context.Context, pat *Pattern, p *Plan, opts RunOptions) (res *RunResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	release, aerr := db.svc.admit.Acquire(ctx)
	if aerr != nil {
		// Shed load before it becomes work: rejected queries never reach
		// the metrics' served/latency counters (they have no execution to
		// measure); admission keeps its own rejected/queued counters.
		return nil, aerr
	}
	defer release()
	db.svc.metrics.QueryStarted()
	t0 := time.Now()
	defer func() {
		if perr := exec.RecoverPanic(recover()); perr != nil {
			res, err = nil, perr
			db.svc.recordPanic(pat, perr)
		}
		db.svc.metrics.QueryFinished(time.Since(t0), err)
		if res != nil {
			db.svc.metrics.ExecBatched(res.Stats.Batches, res.Stats.SkippedTuples)
		}
	}()
	if hook := db.svc.testHookRun; hook != nil {
		hook()
	}
	res, err = db.run(ctx, pat, p, opts)
	return res, err
}

// recordPanic folds one recovered panic into the observability surfaces:
// the metrics counter and a slow-query ring entry carrying the stack, so
// the crash-that-wasn't is diagnosable after the fact.
func (s *service) recordPanic(pat *Pattern, perr error) {
	s.metrics.RecoveredPanic()
	e := SlowQueryEntry{
		Time:  time.Now(),
		Error: perr.Error(),
	}
	var pe *exec.PanicError
	if errors.As(perr, &pe) {
		e.Stack = string(pe.Stack)
	}
	if pat != nil {
		e.Pattern = pat.String()
		fp, _ := pattern.Fingerprint(pat)
		e.Fingerprint = fp
	}
	s.slow.record(e)
}

// run is Run without the metrics observation, on the current snapshot.
func (db *Database) run(ctx context.Context, pat *Pattern, p *Plan, opts RunOptions) (*RunResult, error) {
	return db.runOn(ctx, db.view(), pat, p, opts)
}

// runOn executes a plan against one pinned snapshot: the whole run reads
// exactly sn's document and store, so concurrent mutations (which publish
// new snapshots) are invisible to it. The corpus layer pins the snapshot
// itself so it can demultiplex matches with the matching member table.
func (db *Database) runOn(ctx context.Context, sn *dbSnap, pat *Pattern, p *Plan, opts RunOptions) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers == 0 {
		workers = db.parallelism
	} else if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// With tracing on, operator trees (one per partition in parallel mode)
	// are built through a TraceBuilder so every clone accumulates into one
	// plan-shaped trace; with tracing off the plain compiler runs and
	// execution carries zero instrumentation.
	var tb *exec.TraceBuilder
	buildOp := func() (exec.Operator, error) { return exec.Build(pat, p) }
	if opts.Trace {
		var err error
		if tb, err = exec.NewTraceBuilder(pat, p); err != nil {
			return nil, err
		}
		buildOp = tb.Build
	}
	ectx := &exec.Context{Ctx: ctx, Doc: sn.doc, Store: sn.store}
	res := &RunResult{}
	if workers > 0 {
		pe := &exec.ParallelExec{Workers: workers, Batch: !opts.NoBatch}
		if tb != nil {
			pe.BuildOp = tb.Build
		}
		switch {
		case opts.Limit > 0:
			out, err := pe.RunLimit(ctx, ectx, pat, p, opts.Limit)
			if err != nil {
				return nil, err
			}
			res.Count = len(out)
			if !opts.CountOnly {
				res.Matches = out
			}
		case opts.CountOnly:
			n, err := pe.RunCount(ctx, ectx, pat, p)
			if err != nil {
				return nil, err
			}
			res.Count = n
		default:
			out, err := pe.Run(ctx, ectx, pat, p)
			if err != nil {
				return nil, err
			}
			res.Matches, res.Count = out, len(out)
		}
		res.Stats = ectx.Stats
		if tb != nil {
			res.Trace = tb.Trace()
		}
		return res, nil
	}
	if ctx.Done() != nil {
		ectx.Interrupt = ctx.Err
	}
	op, err := buildOp()
	if err != nil {
		return nil, err
	}
	// The driver picks the execution mode at the root: DrainBatched/
	// CountBatched pull NextBatch through the whole tree, Drain/Count pull
	// tuples. The operator tree itself is mode-agnostic.
	drain := exec.Drain
	count := exec.Count
	if !opts.NoBatch {
		drain = exec.DrainBatched
		count = exec.CountBatched
	}
	switch {
	case opts.Limit > 0:
		out, err := drain(ectx, exec.NewLimit(op, opts.Limit))
		if err != nil {
			return nil, err
		}
		out = exec.NormalizeAll(op.Schema(), pat.N(), out)
		res.Count = len(out)
		if !opts.CountOnly {
			res.Matches = out
		}
	case opts.CountOnly:
		n, err := count(ectx, op)
		if err != nil {
			return nil, err
		}
		res.Count = n
	default:
		out, err := drain(ectx, op)
		if err != nil {
			return nil, err
		}
		res.Matches = exec.NormalizeAll(op.Schema(), pat.N(), out)
		res.Count = len(res.Matches)
	}
	res.Stats = ectx.Stats
	if tb != nil {
		res.Trace = tb.Trace()
	}
	return res, nil
}

// QueryOptions tunes one QueryContext call. The zero value optimizes with
// DP, executes without a limit, and uses the plan cache. All ExecOptions
// fields apply: the optimizer fields steer the (cached) plan search, the
// execution fields the run of the chosen plan.
type QueryOptions struct {
	ExecOptions
	// SlowQueryThreshold, when > 0, overrides the handle-level slow-query
	// threshold (SetSlowQueryLog) for this call.
	SlowQueryThreshold time.Duration
	// OnSlowQuery, when non-nil, is called (in addition to any
	// handle-level hook being replaced for this call) if the query
	// crosses the effective threshold.
	OnSlowQuery func(SlowQueryEntry)
}

// QueryContext parses src, optimizes it (through the plan cache, unless
// opts.NoCache) and executes the chosen plan, observing ctx in both phases:
// cancellation aborts the optimizer search or the execution, whichever is
// running, and QueryContext returns ctx's error. Query, QueryPattern and
// XQuery are wrappers over this entry point.
func (db *Database) QueryContext(ctx context.Context, src string, opts QueryOptions) (*QueryResult, error) {
	pat, err := ParsePattern(src)
	if err != nil {
		return nil, err
	}
	return db.QueryPatternContext(ctx, pat, opts)
}

// QueryPatternContext is QueryContext for an already-built pattern. When a
// slow-query log is configured (SetSlowQueryLog or the per-call options)
// the query runs with per-operator tracing so a threshold-crossing entry
// can attribute its time.
func (db *Database) QueryPatternContext(ctx context.Context, pat *Pattern, opts QueryOptions) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	thr, slowFn := db.svc.slow.config()
	if opts.SlowQueryThreshold > 0 {
		thr = opts.SlowQueryThreshold
	}
	if opts.OnSlowQuery != nil {
		slowFn = opts.OnSlowQuery
	}
	t0 := time.Now()
	res, cached, key, err := db.svc.optimizePattern(ctx, pat, db.model, db.view().store, opts.Method, opts.Te, opts.NoCache, opts.NoValueIndex)
	if err != nil {
		return nil, err
	}
	optTime := time.Since(t0)
	t1 := time.Now()
	eo := opts.ExecOptions
	eo.Trace = opts.Trace || thr > 0
	rr, err := db.Run(ctx, pat, res.Plan, RunOptions{ExecOptions: eo})
	if err != nil {
		return nil, fmt.Errorf("sjos: executing %v plan: %w", opts.Method, err)
	}
	execTime := time.Since(t1)
	db.svc.noteDrift(key, cached, eo, rr.Trace)
	db.svc.maybeLogSlow(pat, opts.Method, thr, slowFn, optTime, execTime, rr.Count, rr.Stats, rr.Trace, cached)
	return &QueryResult{
		Matches:         rr.Matches,
		Plan:            res.Plan,
		PlanText:        res.Plan.Format(pat),
		EstCost:         res.Cost,
		CachedPlan:      cached,
		OptimizeTime:    optTime,
		ExecuteTime:     execTime,
		PlansConsidered: res.Counters.PlansConsidered,
		Exec:            rr.Stats,
		Trace:           rr.Trace,
	}, nil
}
