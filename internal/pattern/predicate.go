package pattern

import (
	"strconv"
	"strings"
)

// This file is the single definition of value-predicate semantics. The
// executor's scan filter, the reference matcher, the selectivity estimator
// and the value index's eligibility/probe logic all evaluate predicates
// through it, so an index probe can never drift from scan+filter semantics.

// ParseNumeric reports whether s is a numeric value under the predicate
// semantics (strconv.ParseFloat, 64-bit) and returns the parsed number.
// Every component that decides "numeric vs lexicographic" must use this one
// parse so they agree on edge cases (exponents, leading signs, "Inf", ...).
func ParseNumeric(s string) (float64, bool) {
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

// EvalPredicate reports whether a node text value satisfies (op, rhs).
// Comparison is numeric when both sides parse as numbers (ParseNumeric) and
// lexicographic otherwise; CmpContains is substring containment.
func EvalPredicate(v string, op CmpOp, rhs string) bool {
	switch op {
	case CmpNone:
		return true
	case CmpContains:
		return strings.Contains(v, rhs)
	}
	var c int
	if fa, ok := ParseNumeric(v); ok {
		if fb, ok := ParseNumeric(rhs); ok {
			switch {
			case fa < fb:
				c = -1
			case fa > fb:
				c = 1
			}
			return cmpHolds(c, op)
		}
	}
	c = strings.Compare(v, rhs)
	return cmpHolds(c, op)
}

func cmpHolds(c int, op CmpOp) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// MatchesValue reports whether a document node with text value v satisfies
// the pattern node's value predicate (trivially true for CmpNone).
func (nd Node) MatchesValue(v string) bool {
	return EvalPredicate(v, nd.Op, nd.Value)
}
