package xquery

import (
	"testing"

	"sjos/internal/pattern"
)

func TestCompileSimple(t *testing.T) {
	c, err := Compile(`for $m in //manager return $m/name`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pattern.N() != 2 {
		t.Fatalf("pattern: %s", c.Pattern)
	}
	if c.Vars["m"] != 0 {
		t.Fatalf("vars: %v", c.Vars)
	}
	if len(c.Return) != 1 || c.Return[0] != 1 {
		t.Fatalf("return: %v", c.Return)
	}
	if c.Pattern.Axis[1] != pattern.Child || c.Pattern.Nodes[1].Tag != "name" {
		t.Fatalf("pattern: %s", c.Pattern)
	}
}

func TestCompileRunningExample(t *testing.T) {
	// The paper's Example 2.2 as a FLWOR query.
	c, err := Compile(`
		for $a in //manager, $d in $a//manager
		where $a//employee/name and $d/department/name
		return $a/name`)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Pattern
	// manager, manager, employee, name, department, name, name = 7 nodes.
	if p.N() != 7 {
		t.Fatalf("%d nodes: %s", p.N(), p)
	}
	if c.Vars["a"] != 0 || p.Nodes[c.Vars["d"]].Tag != "manager" {
		t.Fatalf("vars: %v", c.Vars)
	}
	if p.Axis[c.Vars["d"]] != pattern.Descendant {
		t.Fatal("$d should be a descendant of $a")
	}
	if len(c.Return) != 1 || p.Nodes[c.Return[0]].Tag != "name" {
		t.Fatalf("return: %v", c.Return)
	}
}

func TestCompileWhereComparison(t *testing.T) {
	c, err := Compile(`for $e in //employee where $e/salary >= 50000 return $e/name`)
	if err != nil {
		t.Fatal(err)
	}
	var sal *pattern.Node
	for i := range c.Pattern.Nodes {
		if c.Pattern.Nodes[i].Tag == "salary" {
			sal = &c.Pattern.Nodes[i]
		}
	}
	if sal == nil || sal.Op != pattern.CmpGe || sal.Value != "50000" {
		t.Fatalf("salary predicate: %+v", sal)
	}
}

func TestCompileStringLiteralAndContains(t *testing.T) {
	c, err := Compile(`for $a in //article where $a/author = "knuth" and $a/title ~ "art" return $a`)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string][2]string{}
	for _, n := range c.Pattern.Nodes {
		if n.Op != pattern.CmpNone {
			ops[n.Tag] = [2]string{n.Op.String(), n.Value}
		}
	}
	if ops["author"] != [2]string{"=", "knuth"} || ops["title"] != [2]string{"~", "art"} {
		t.Fatalf("ops: %v", ops)
	}
	// return $a: projecting the variable itself.
	if len(c.Return) != 1 || c.Return[0] != c.Vars["a"] {
		t.Fatalf("return: %v vars %v", c.Return, c.Vars)
	}
}

func TestCompileOrderBy(t *testing.T) {
	c, err := Compile(`for $m in //manager order by $m return $m/name`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pattern.OrderBy != c.Vars["m"] {
		t.Fatalf("OrderBy = %d", c.Pattern.OrderBy)
	}
	c2, err := Compile(`for $m in //manager order by $m/name return $m`)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Pattern.OrderBy == c2.Vars["m"] || c2.Pattern.Nodes[c2.Pattern.OrderBy].Tag != "name" {
		t.Fatalf("OrderBy = %d", c2.Pattern.OrderBy)
	}
}

func TestCompileStepSharing(t *testing.T) {
	// $m/name appears in where and return: one pattern node.
	c, err := Compile(`for $m in //manager where $m/name return $m/name`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pattern.N() != 2 {
		t.Fatalf("steps not shared: %s", c.Pattern)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		``,
		`return $x`,
		`for $m in //a`,                        // no return
		`for $m in //a return $q/name`,         // unbound var
		`for $m in //a, $m in //b return $m`,   // duplicate var
		`for $m in //a where return $m`,        // missing condition
		`for $m in //a order return $m`,        // missing by
		`for $m in //a return //b`,             // second absolute root conflicts
		`for $m in //a where $m/x = return $m`, // missing literal
		`for $m in //a return $m/`,             // dangling slash
		`for $m in //a where $m/x = 1 and $m/x = 2 return $m`, // conflicting predicates
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestCompileSharedAbsoluteRoot(t *testing.T) {
	// Two absolute paths with the same root tag are allowed and share it.
	c, err := Compile(`for $a in //db/x, $b in //db/y return $a, $b`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pattern.Nodes[0].Tag != "db" || c.Pattern.N() != 3 {
		t.Fatalf("pattern: %s", c.Pattern)
	}
}
