package storage

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"sjos/internal/xmltree"
)

func TestSealVerifyRoundTrip(t *testing.T) {
	var p Page
	for i := PageHeaderSize; i < PageSize; i++ {
		p[i] = byte(i * 31)
	}
	SealPage(42, &p)
	if err := VerifyPage(42, &p); err != nil {
		t.Fatalf("sealed page fails verification: %v", err)
	}

	// Wrong expected ID → misdirected-read error.
	err := VerifyPage(7, &p)
	var ce *CorruptPageError
	if !errors.As(err, &ce) || ce.Tag != "page-id" || ce.Page != 7 || ce.Got != 42 {
		t.Fatalf("verify with wrong id: %v", err)
	}

	// Payload bit flip → checksum error.
	p[100] ^= 0x01
	err = VerifyPage(42, &p)
	if !errors.As(err, &ce) || ce.Tag != "checksum" {
		t.Fatalf("verify of damaged page: %v", err)
	}
	if !IsCorrupt(err) {
		t.Fatal("IsCorrupt = false for CorruptPageError")
	}
}

// fastRetry keeps test backoffs negligible.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}

// TestPoolDetectsCorruption: a page damaged at rest surfaces as a typed
// *CorruptPageError (permanent corruption survives every retry) and the
// failure is counted.
func TestPoolDetectsCorruption(t *testing.T) {
	f := NewMemFile()
	writePages(t, f, 3)
	// Damage page 1 behind the pool's back.
	var p Page
	if err := f.ReadPage(1, &p); err != nil {
		t.Fatal(err)
	}
	p[500] ^= 0x40
	if err := f.WritePage(1, &p); err != nil {
		t.Fatal(err)
	}

	bp := NewBufferPool(f, 4)
	bp.SetRetryPolicy(fastRetry)
	if _, err := bp.Get(0); err != nil {
		t.Fatalf("intact page: %v", err)
	}
	bp.Unpin(0, false)

	_, err := bp.Get(1)
	var ce *CorruptPageError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt page: err = %v", err)
	}
	if ce.Page != 1 || ce.Tag != "checksum" || ce.Attempts != fastRetry.MaxAttempts {
		t.Fatalf("corrupt error detail: %+v", ce)
	}
	st := bp.Stats()
	if st.ChecksumFailures != uint64(fastRetry.MaxAttempts) {
		t.Fatalf("ChecksumFailures = %d, want %d", st.ChecksumFailures, fastRetry.MaxAttempts)
	}
	if st.Retries != uint64(fastRetry.MaxAttempts-1) {
		t.Fatalf("Retries = %d, want %d", st.Retries, fastRetry.MaxAttempts-1)
	}
	if st.Pinned != 0 {
		t.Fatalf("Pinned = %d after failed Get, want 0", st.Pinned)
	}
	// The failed page never became resident.
	if st.Resident != 1 {
		t.Fatalf("Resident = %d, want 1", st.Resident)
	}
}

// healingFile fails (or corrupts) the first failN reads of each call
// sequence, then serves clean pages — the shape retry is designed to heal.
type healingFile struct {
	*MemFile
	failN   int // reads left to sabotage
	corrupt bool
	reads   int
}

func (h *healingFile) ReadPage(id PageID, dst *Page) error {
	h.reads++
	if h.failN > 0 {
		h.failN--
		if h.corrupt {
			if err := h.MemFile.ReadPage(id, dst); err != nil {
				return err
			}
			dst[PageHeaderSize+3] ^= 0x80 // torn read: payload damaged in flight
			return nil
		}
		return MarkTransient(errors.New("flaky read"))
	}
	return h.MemFile.ReadPage(id, dst)
}

func TestPoolRetriesTransientReadFailures(t *testing.T) {
	for _, corrupt := range []bool{false, true} {
		t.Run(fmt.Sprintf("corrupt=%v", corrupt), func(t *testing.T) {
			mf := NewMemFile()
			writePages(t, mf, 2)
			h := &healingFile{MemFile: mf, failN: 2, corrupt: corrupt}
			bp := NewBufferPool(h, 4)
			bp.SetRetryPolicy(fastRetry)

			pg, err := bp.Get(0)
			if err != nil {
				t.Fatalf("Get over healing file: %v", err)
			}
			if pg[PageHeaderSize] != 0 {
				t.Fatalf("content = %d", pg[PageHeaderSize])
			}
			bp.Unpin(0, false)
			st := bp.Stats()
			if st.Retries != 2 {
				t.Fatalf("Retries = %d, want 2", st.Retries)
			}
			if corrupt && st.ChecksumFailures != 2 {
				t.Fatalf("ChecksumFailures = %d, want 2", st.ChecksumFailures)
			}
		})
	}
}

// TestPoolRetryExhaustion: a transient fault that outlasts MaxAttempts
// surfaces the underlying error, and permanent (unmarked) errors fail fast
// without retrying.
func TestPoolRetryExhaustion(t *testing.T) {
	mf := NewMemFile()
	writePages(t, mf, 1)
	h := &healingFile{MemFile: mf, failN: 100}
	bp := NewBufferPool(h, 2)
	bp.SetRetryPolicy(fastRetry)
	if _, err := bp.Get(0); !IsTransient(err) {
		t.Fatalf("exhausted transient: err = %v", err)
	}
	if h.reads != fastRetry.MaxAttempts {
		t.Fatalf("reads = %d, want %d", h.reads, fastRetry.MaxAttempts)
	}

	mf2 := NewMemFile()
	writePages(t, mf2, 1)
	perm := &flakyFile{MemFile: mf2, failReads: true}
	bp2 := NewBufferPool(perm, 2)
	bp2.SetRetryPolicy(fastRetry)
	if _, err := bp2.Get(0); !errors.Is(err, errFlaky) {
		t.Fatalf("permanent failure: err = %v", err)
	}
	if got := bp2.Stats().Retries; got != 0 {
		t.Fatalf("permanent failure retried %d times", got)
	}
}

// TestPoolRetryHonorsCancellation: a cancelled context aborts the backoff
// wait promptly instead of sleeping out the full schedule.
func TestPoolRetryHonorsCancellation(t *testing.T) {
	mf := NewMemFile()
	writePages(t, mf, 1)
	h := &healingFile{MemFile: mf, failN: 1000}
	bp := NewBufferPool(h, 2)
	// Long backoff: without cancellation this Get would block for ~minutes.
	bp.SetRetryPolicy(RetryPolicy{MaxAttempts: 1000, BaseDelay: time.Minute, MaxDelay: time.Minute})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := bp.GetCtx(ctx, 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the Get enter its backoff wait
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Get: err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Get did not return promptly")
	}
	if st := bp.Stats(); st.Pinned != 0 {
		t.Fatalf("Pinned = %d after cancelled Get", st.Pinned)
	}
}

// TestStoreChecksumRoundTripAcrossRebuild: a store image built on a
// DiskFile verifies cleanly after reopen, and on-disk damage to any page is
// detected when that page is read through a fresh pool.
func TestStoreChecksumRoundTripAcrossRebuild(t *testing.T) {
	doc := buildDoc(t, 3000)
	path := filepath.Join(t.TempDir(), "store.db")
	d, err := CreateDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := BuildStoreOn(d, doc, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Scan every tag once: all pages verify.
	total := 0
	for tag := 0; tag < doc.NumTags(); tag++ {
		sc := st.ScanTag(xmltree.TagID(tag))
		for {
			_, _, ok, err := sc.Next()
			if err != nil {
				t.Fatalf("scan tag %d: %v", tag, err)
			}
			if !ok {
				break
			}
			total++
		}
	}
	if total != doc.NumNodes() {
		t.Fatalf("scanned %d nodes, want %d", total, doc.NumNodes())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and damage one byte of page 2 on disk.
	d2, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	var pg Page
	if err := d2.ReadPage(2, &pg); err != nil {
		t.Fatal(err)
	}
	pg[300] ^= 0x08
	if err := d2.WritePage(2, &pg); err != nil {
		t.Fatal(err)
	}

	bp := NewBufferPool(d2, 8)
	bp.SetRetryPolicy(fastRetry)
	if _, err := bp.Get(1); err != nil {
		t.Fatalf("intact page after reopen: %v", err)
	}
	bp.Unpin(1, false)
	_, err = bp.Get(2)
	var ce *CorruptPageError
	if !errors.As(err, &ce) || ce.Page != 2 {
		t.Fatalf("damaged page after reopen: err = %v", err)
	}
}

// TestPoolSingleFlightLoad: concurrent Gets of one absent page issue a
// single physical read.
func TestPoolSingleFlightLoad(t *testing.T) {
	mf := NewMemFile()
	writePages(t, mf, 2)
	slow := &slowFile{MemFile: mf, delay: 20 * time.Millisecond}
	bp := NewBufferPool(slow, 4)

	const readers = 8
	done := make(chan error, readers)
	for g := 0; g < readers; g++ {
		go func() {
			pg, err := bp.Get(0)
			if err == nil {
				if pg[PageHeaderSize] != 0 {
					err = fmt.Errorf("content = %d", pg[PageHeaderSize])
				}
				bp.Unpin(0, false)
			}
			done <- err
		}()
	}
	for g := 0; g < readers; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := mf.Reads(); got != 1 {
		t.Fatalf("physical reads = %d, want 1 (single-flight)", got)
	}
	st := bp.Stats()
	if st.Pinned != 0 {
		t.Fatalf("Pinned = %d, want 0", st.Pinned)
	}
}

type slowFile struct {
	*MemFile
	delay time.Duration
}

func (s *slowFile) ReadPage(id PageID, dst *Page) error {
	time.Sleep(s.delay)
	return s.MemFile.ReadPage(id, dst)
}
