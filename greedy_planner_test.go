package sjos

import (
	"context"
	"fmt"
	"testing"

	"sjos/internal/core"
	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/plancache"
)

// TestGreedyDifferential pins the statistics-free Greedy orderer against DP
// on the Table-3 workload shapes, across serial/parallel execution and the
// batched/tuple paths. Greedy may pick a different join order, but the
// result set must be identical; run under -race this also shakes out any
// sharing bug in the greedy builder's plans.
func TestGreedyDifferential(t *testing.T) {
	db, err := GenerateDataset("pers", 1, 1, nil)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	queries := []string{
		"//manager[.//employee/name]//manager/department/name",
		"//manager//manager//manager//manager//manager/department/name",
		"//manager[.//employee/name][department/name]//manager/name",
		"//department/employee/name",
	}
	for _, q := range queries {
		pat := MustParsePattern(q)
		for _, workers := range []int{0, 4} {
			h := db
			if workers > 0 {
				h = db.WithParallelism(workers)
			}
			var want []string
			for _, nobatch := range []bool{false, true} {
				for mi, m := range []Method{MethodDP, MethodGreedy} {
					res, err := h.QueryPatternContext(context.Background(), pat, QueryOptions{
						ExecOptions: ExecOptions{Method: m, NoBatch: nobatch, NoCache: true},
					})
					if err != nil {
						t.Fatalf("%s %v workers=%d nobatch=%v: %v", q, m, workers, nobatch, err)
					}
					got := canonicalize(res.Matches)
					if mi == 0 && !nobatch && want == nil {
						want = got
						continue
					}
					if !equalStrings(got, want) {
						t.Fatalf("%s %v workers=%d nobatch=%v: %d matches, want %d",
							q, m, workers, nobatch, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestGreedyFromStatsMatchesOptimize asserts the two greedy entry points —
// the estimator-backed core.Optimize(MethodGreedy) and the direct
// stats-surface fast path GreedyFromStats — build the identical plan, so
// the fast path cannot drift from the registered method.
func TestGreedyFromStatsMatchesOptimize(t *testing.T) {
	db, err := GenerateDataset("pers", 1, 1, nil)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	stats, _ := db.svc.snapshot()
	model := db.Model()
	for _, q := range []string{
		"//manager[.//employee/name]//manager/department/name",
		"//manager//manager//manager//manager//manager/department/name",
		"//department/employee[name]",
	} {
		pat := MustParsePattern(q)
		est, err := core.NewEstimator(pat, stats)
		if err != nil {
			t.Fatalf("%s: NewEstimator: %v", q, err)
		}
		viaOpt, err := core.Optimize(context.Background(), pat, est, model, core.MethodGreedy, nil)
		if err != nil {
			t.Fatalf("%s: Optimize: %v", q, err)
		}
		direct, err := core.GreedyFromStats(context.Background(), pat, stats, nil, model)
		if err != nil {
			t.Fatalf("%s: GreedyFromStats: %v", q, err)
		}
		if of, df := viaOpt.Plan.Format(pat), direct.Plan.Format(pat); of != df {
			t.Fatalf("%s: plans differ\nOptimize:\n%s\nGreedyFromStats:\n%s", q, of, df)
		}
		if viaOpt.Cost != direct.Cost {
			t.Fatalf("%s: cost %g vs %g", q, viaOpt.Cost, direct.Cost)
		}
	}
}

// scaleEstimates multiplies every operator's cardinality estimate in a plan
// tree, simulating a cached plan whose statistics have gone badly stale.
func scaleEstimates(n *plan.Node, by float64) {
	if n == nil {
		return
	}
	n.EstCard *= by
	scaleEstimates(n.Left, by)
	scaleEstimates(n.Right, by)
}

// TestDriftEvictionReplansOnce is the adaptive-loop regression test: a
// cached plan whose estimates are grossly wrong must be evicted after one
// traced execution, re-planned exactly once, and then served from cache
// again — and the once-per-key guard must suppress a second eviction of the
// same shape at the same statistics version.
func TestDriftEvictionReplansOnce(t *testing.T) {
	db, err := GenerateDataset("pers", 1, 1, nil)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	pat := MustParsePattern("//manager//employee/name")
	traced := QueryOptions{ExecOptions: ExecOptions{Trace: true}}

	run := func(step string, wantCached bool) *QueryResult {
		res, err := db.QueryPatternContext(context.Background(), pat, traced)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if res.CachedPlan != wantCached {
			t.Fatalf("%s: CachedPlan=%v, want %v", step, res.CachedPlan, wantCached)
		}
		return res
	}

	run("cold", false)
	want := canonicalize(run("warm", true).Matches)
	if db.Metrics().Query.DriftEvictions != 0 {
		t.Fatalf("accurate plan evicted: %d drift evictions", db.Metrics().Query.DriftEvictions)
	}

	// Poison the cached entry through its real key: the cache stores the
	// canonical plan by pointer, so scaling its estimates in place is
	// exactly what stale statistics look like to the drift check.
	poison := func(step string) {
		_, ver := db.svc.snapshot()
		fp, _ := pattern.Fingerprint(pat)
		k := plancache.Key{Fingerprint: fp, Method: int(MethodDP), StatsVersion: ver}
		cp, ok := db.svc.cache.Get(k)
		if !ok {
			t.Fatalf("%s: no cache entry under reconstructed key %+v", step, k)
		}
		scaleEstimates(cp.plan, 1e9)
	}

	poison("poison")
	got := run("drifted", true) // served by the poisoned plan, then evicted
	if !equalStrings(canonicalize(got.Matches), want) {
		t.Fatalf("drifted: results changed: %d vs %d matches", len(got.Matches), len(want))
	}
	if n := db.Metrics().Query.DriftEvictions; n != 1 {
		t.Fatalf("after drifted run: %d drift evictions, want 1", n)
	}

	// Evicted entry forces exactly one re-plan; the fresh plan then serves
	// from cache with clean estimates.
	run("replanned", false)
	run("clean", true)
	if n := db.Metrics().Query.DriftEvictions; n != 1 {
		t.Fatalf("after re-plan: %d drift evictions, want 1", n)
	}

	// The once-per-key guard: poisoning the same shape again at the same
	// statistics version must not evict a second time.
	poison("re-poison")
	res := run("suppressed", true)
	if n := db.Metrics().Query.DriftEvictions; n != 1 {
		t.Fatalf("guard failed: %d drift evictions, want 1", n)
	}
	if !equalStrings(canonicalize(res.Matches), want) {
		t.Fatalf("suppressed: results changed")
	}
	// The suppressed entry stays cached (only the eviction is skipped).
	if r := run("still-cached", true); fmt.Sprint(len(r.Matches)) != fmt.Sprint(len(want)) {
		t.Fatalf("still-cached: %d matches, want %d", len(r.Matches), len(want))
	}
}
