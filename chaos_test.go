package sjos

// Chaos differential suite: every optimizer method's plan runs over a store
// whose page file injects read failures and corruption at swept fault
// points, in all four execution modes (serial/parallel × batched/tuple).
// The contract is differential — each run must either produce exactly the
// fault-free result or return the injected (typed) error. Never a wrong
// answer, never a panic, never a pinned frame left behind.

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"sjos/internal/faultfs"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// chaosDB builds a database whose pages live on a fault-injecting file
// (initially fault-free) with a deliberately tiny buffer pool, so queries
// perform physical reads that the policy can intercept.
func chaosDB(t *testing.T, seed int64, n int) (*Database, *faultfs.File) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	doc := xmltree.RandomDocument(rng, n, []string{"a", "b", "c"})
	ff := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
	db, err := fromDocument(doc, &Options{PageFile: ff, PoolFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	return db, ff
}

// runChaos executes one plan under the current fault policy and enforces the
// invariants that hold regardless of outcome: no panic-typed error, no
// leaked pins.
func runChaos(t *testing.T, db *Database, pat *Pattern, p *Plan, opts RunOptions) (*RunResult, error) {
	t.Helper()
	res, err := db.Run(context.Background(), pat, p, opts)
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Fatalf("panic escaped as error: %v\n%s", pe, pe.Stack)
	}
	if pinned := db.PoolStats().Pinned; pinned != 0 {
		t.Fatalf("pin leak: %d frames still pinned", pinned)
	}
	return res, err
}

// faultPoints picks fault ordinals spanning a mode's read count: the first
// read, mid-flight, and the last.
func faultPoints(reads int) []int {
	if reads < 1 {
		reads = 1
	}
	pts := []int{1}
	for _, p := range []int{reads / 2, reads} {
		if p > pts[len(pts)-1] {
			pts = append(pts, p)
		}
	}
	return pts
}

func TestChaosDifferential(t *testing.T) {
	db, ff := chaosDB(t, 42, 5000)
	pat := MustParsePattern("//a//b//c")
	methods := []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodDPAPLD, MethodFP, MethodGreedy}
	modes := []struct {
		name string
		opts RunOptions
	}{
		{"serial-batch", RunOptions{}},
		{"serial-tuple", RunOptions{ExecOptions: ExecOptions{NoBatch: true}}},
		{"parallel-batch", RunOptions{Workers: 2}},
		{"parallel-tuple", RunOptions{ExecOptions: ExecOptions{NoBatch: true}, Workers: 2}},
	}
	want := -1
	var failFired, corruptFired, healed int
	for _, m := range methods {
		opt, err := db.Optimize(pat, m, 0)
		if err != nil {
			t.Fatalf("%v: optimize: %v", m, err)
		}
		for _, mode := range modes {
			// Fault-free baseline; also measures this mode's physical read
			// count so the fault sweep covers its real I/O schedule.
			ff.SetPolicy(faultfs.Policy{})
			base, err := runChaos(t, db, pat, opt.Plan, mode.opts)
			if err != nil {
				t.Fatalf("%v/%s: baseline: %v", m, mode.name, err)
			}
			if want == -1 {
				want = base.Count
			} else if base.Count != want {
				t.Fatalf("%v/%s: baseline count = %d, want %d", m, mode.name, base.Count, want)
			}
			reads := int(ff.Reads())
			for _, p := range faultPoints(reads) {
				// Permanent read failure: correct result (fault point past
				// this run's reads) or the injected error.
				ff.SetPolicy(faultfs.Policy{FailNthRead: p})
				if res, err := runChaos(t, db, pat, opt.Plan, mode.opts); err != nil {
					failFired++
					if !errors.Is(err, faultfs.ErrInjected) {
						t.Fatalf("%v/%s failNth=%d: error = %v, want injected", m, mode.name, p, err)
					}
				} else if res.Count != want {
					t.Fatalf("%v/%s failNth=%d: count = %d, want %d", m, mode.name, p, res.Count, want)
				}

				// Transient read failure: the pool's retry loop must heal it
				// — the full, correct result, no error.
				ff.SetPolicy(faultfs.Policy{FailNthRead: p, Transient: true})
				res, err := runChaos(t, db, pat, opt.Plan, mode.opts)
				if err != nil {
					t.Fatalf("%v/%s transient failNth=%d: %v", m, mode.name, p, err)
				}
				if res.Count != want {
					t.Fatalf("%v/%s transient failNth=%d: count = %d, want %d", m, mode.name, p, res.Count, want)
				}
				if ff.FaultsInjected() > 0 {
					healed++
				}

				// Permanent corruption: checksum verification must catch the
				// flipped bit and surface a typed CorruptPageError.
				ff.SetPolicy(faultfs.Policy{CorruptNthRead: p})
				if res, err := runChaos(t, db, pat, opt.Plan, mode.opts); err != nil {
					corruptFired++
					var ce *CorruptPageError
					if !errors.As(err, &ce) {
						t.Fatalf("%v/%s corruptNth=%d: error = %v, want *CorruptPageError", m, mode.name, p, err)
					}
				} else if res.Count != want {
					t.Fatalf("%v/%s corruptNth=%d: count = %d, want %d", m, mode.name, p, res.Count, want)
				}

				// Transient corruption (a torn read): one bad copy, re-read
				// clean — must heal to the correct result.
				ff.SetPolicy(faultfs.Policy{CorruptNthRead: p, Transient: true})
				before := db.PoolStats().ChecksumFailures
				res, err = runChaos(t, db, pat, opt.Plan, mode.opts)
				if err != nil {
					t.Fatalf("%v/%s transient corruptNth=%d: %v", m, mode.name, p, err)
				}
				if res.Count != want {
					t.Fatalf("%v/%s transient corruptNth=%d: count = %d, want %d", m, mode.name, p, res.Count, want)
				}
				if ff.FaultsInjected() > 0 && db.PoolStats().ChecksumFailures <= before {
					t.Fatalf("%v/%s transient corruptNth=%d: corruption injected but no checksum failure counted", m, mode.name, p)
				}
			}
		}
	}
	// The sweep must actually exercise the error paths, not just baselines.
	if failFired == 0 || corruptFired == 0 || healed == 0 {
		t.Fatalf("chaos sweep too tame: %d fail, %d corrupt, %d healed runs fired", failFired, corruptFired, healed)
	}
	// The store's injected-fault count surfaces through the metrics probe.
	if db.Metrics().FaultsInjected == 0 {
		t.Fatal("Metrics().FaultsInjected = 0 after a chaos sweep")
	}
}

// TestChaosProbabilistic drives seeded random fault injection (the same
// engine behind xqbench -chaos) across every method: with transient faults
// and retries every run must come back correct.
func TestChaosProbabilistic(t *testing.T) {
	db, ff := chaosDB(t, 43, 4000)
	pat := MustParsePattern("//a//b")
	base, err := db.Run(context.Background(), pat, mustPlan(t, db, pat, MethodDP), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodDPAPLD, MethodFP, MethodGreedy} {
		p := mustPlan(t, db, pat, m)
		ff.SetPolicy(faultfs.Policy{FailProb: 0.05, Seed: int64(m) + 1, Transient: true})
		res, err := runChaos(t, db, pat, p, RunOptions{Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Count != base.Count {
			t.Fatalf("%v: count = %d, want %d", m, res.Count, base.Count)
		}
	}
	ff.SetPolicy(faultfs.Policy{})
}

func mustPlan(t *testing.T, db *Database, pat *Pattern, m Method) *Plan {
	t.Helper()
	res, err := db.Optimize(pat, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}

// TestChaosValueProbe sweeps fault injection over a value-index probe
// plan: the probe's compressed postings reads go through the same buffer
// pool, checksum and retry path as everything else, so each run must
// return the fault-free count or a typed injected/corruption error — and
// transient faults must heal. The scan+filter lane over the same faulty
// store is the correctness oracle.
func TestChaosValueProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	doc := randomValueXML(rng, 4000, []string{"a", "b", "c"})
	ff := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
	db, err := LoadXMLString(doc, &Options{PageFile: ff, PoolFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	pat := MustParsePattern(`//a[b = "w2"]`)
	opt, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !containsOp(opt.Plan.Format(pat), "ValueIndexScan") {
		t.Fatalf("chaos fixture plan has no value probe:\n%s", opt.Plan.Format(pat))
	}
	// Oracle: scan+filter on the same (currently fault-free) store.
	ff.SetPolicy(faultfs.Policy{})
	res, err := db.QueryPatternContext(context.Background(), pat,
		QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP, NoValueIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	want := len(res.Matches)
	modes := []struct {
		name string
		opts RunOptions
	}{
		{"serial-batch", RunOptions{}},
		{"serial-tuple", RunOptions{ExecOptions: ExecOptions{NoBatch: true}}},
		{"parallel-batch", RunOptions{Workers: 2}},
		{"parallel-tuple", RunOptions{ExecOptions: ExecOptions{NoBatch: true}, Workers: 2}},
	}
	var fired, healed int
	for _, mode := range modes {
		ff.SetPolicy(faultfs.Policy{})
		base, err := runChaos(t, db, pat, opt.Plan, mode.opts)
		if err != nil {
			t.Fatalf("%s: baseline: %v", mode.name, err)
		}
		if base.Count != want {
			t.Fatalf("%s: baseline count = %d, oracle %d", mode.name, base.Count, want)
		}
		reads := int(ff.Reads())
		for _, p := range faultPoints(reads) {
			ff.SetPolicy(faultfs.Policy{FailNthRead: p})
			if res, err := runChaos(t, db, pat, opt.Plan, mode.opts); err != nil {
				fired++
				if !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("%s failNth=%d: error = %v, want injected", mode.name, p, err)
				}
			} else if res.Count != want {
				t.Fatalf("%s failNth=%d: count = %d, want %d", mode.name, p, res.Count, want)
			}
			ff.SetPolicy(faultfs.Policy{FailNthRead: p, Transient: true})
			res, err := runChaos(t, db, pat, opt.Plan, mode.opts)
			if err != nil {
				t.Fatalf("%s transient failNth=%d: %v", mode.name, p, err)
			}
			if res.Count != want {
				t.Fatalf("%s transient failNth=%d: count = %d, want %d", mode.name, p, res.Count, want)
			}
			if ff.FaultsInjected() > 0 {
				healed++
			}
			ff.SetPolicy(faultfs.Policy{CorruptNthRead: p})
			if res, err := runChaos(t, db, pat, opt.Plan, mode.opts); err != nil {
				var ce *CorruptPageError
				if !errors.As(err, &ce) {
					t.Fatalf("%s corruptNth=%d: error = %v, want *CorruptPageError", mode.name, p, err)
				}
			} else if res.Count != want {
				t.Fatalf("%s corruptNth=%d: count = %d, want %d", mode.name, p, res.Count, want)
			}
		}
	}
	ff.SetPolicy(faultfs.Policy{})
	if fired == 0 || healed == 0 {
		t.Fatalf("value-probe chaos sweep too tame: %d fail runs fired, %d healed", fired, healed)
	}
}

// containsOp reports whether a plan rendering mentions an operator name.
func containsOp(plan, op string) bool {
	return strings.Contains(plan, op)
}
