package core

import (
	"context"
	"fmt"
	"strings"

	"sjos/internal/cost"
	"sjos/internal/pattern"
)

// Method selects an optimization algorithm.
type Method int

// The optimization algorithms of the paper (§3), plus the DPP′ ablation and
// the statistics-free Greedy orderer (see greedy.go).
const (
	MethodDP Method = iota
	MethodDPP
	MethodDPPNoLookahead
	MethodDPAPEB
	MethodDPAPLD
	MethodFP
	MethodGreedy
)

// String names the method as in the paper.
func (m Method) String() string {
	switch m {
	case MethodDP:
		return "DP"
	case MethodDPP:
		return "DPP"
	case MethodDPPNoLookahead:
		return "DPP'"
	case MethodDPAPEB:
		return "DPAP-EB"
	case MethodDPAPLD:
		return "DPAP-LD"
	case MethodFP:
		return "FP"
	case MethodGreedy:
		return "Greedy"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists all methods in the paper's presentation order, with the
// statistics-free Greedy orderer appended as the sixth.
func Methods() []Method {
	return []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodDPAPLD, MethodFP, MethodGreedy}
}

// parseableMethods lists every method ParseMethod accepts, in the order the
// error message presents them.
var parseableMethods = []Method{
	MethodDP, MethodDPP, MethodDPPNoLookahead, MethodDPAPEB, MethodDPAPLD, MethodFP, MethodGreedy,
}

// MethodNames returns the canonical spelling of every parseable method, in
// presentation order — the list ParseMethod's error enumerates.
func MethodNames() []string {
	names := make([]string, len(parseableMethods))
	for i, m := range parseableMethods {
		names[i] = m.String()
	}
	return names
}

// ParseMethod resolves a method name (as printed by String). Matching is
// case-insensitive, and Greedy also accepts the shorthands "g" and
// "greedy". An unknown name's error enumerates the valid spellings.
func ParseMethod(s string) (Method, error) {
	for _, m := range parseableMethods {
		if strings.EqualFold(m.String(), s) {
			return m, nil
		}
	}
	switch strings.ToLower(s) {
	case "g":
		return MethodGreedy, nil
	}
	return 0, fmt.Errorf("core: unknown method %q (valid: %s)", s, strings.Join(MethodNames(), ", "))
}

// Options tunes method-specific behaviour.
type Options struct {
	// Te is the DPAP-EB expansion bound. When 0, the bound defaults to
	// the number of edges in the pattern, which is the setting the
	// paper's Table 1 uses.
	Te int
}

// Optimize runs the selected algorithm and returns its chosen plan. ctx
// cancels the search: the DP level loop, the DPP/DPAP priority-queue loop
// and FP's subtree recursion all poll it, so even the exponential searches
// on large patterns abandon work promptly and return ctx's error. A nil ctx
// is treated as context.Background().
func Optimize(ctx context.Context, pat *pattern.Pattern, est *Estimator, model cost.Model, m Method, opts *Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !model.Valid() {
		return nil, fmt.Errorf("core: invalid cost model %+v", model)
	}
	switch m {
	case MethodDP:
		return dp(ctx, pat, est, model)
	case MethodDPP:
		return dppSearch(ctx, pat, est, model, dppConfig{name: "DPP", lookahead: true})
	case MethodDPPNoLookahead:
		return dppSearch(ctx, pat, est, model, dppConfig{name: "DPP'"})
	case MethodDPAPEB:
		te := 0
		if opts != nil {
			te = opts.Te
		}
		if te == 0 {
			te = pat.NumEdges()
		}
		if te < 1 {
			te = 1
		}
		return dpapEB(ctx, pat, est, model, te)
	case MethodDPAPLD:
		return dppSearch(ctx, pat, est, model, dppConfig{name: "DPAP-LD", lookahead: true, leftDeep: true})
	case MethodFP:
		return fp(ctx, pat, est, model)
	case MethodGreedy:
		return greedy(ctx, pat, est, model)
	default:
		return nil, fmt.Errorf("core: unknown method %d", int(m))
	}
}
