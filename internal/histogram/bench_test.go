package histogram

import (
	"fmt"
	"math/rand"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

func benchDoc(n int) *xmltree.Document {
	rng := rand.New(rand.NewSource(5))
	return xmltree.RandomDocument(rng, n, []string{"a", "b", "c", "d", "e"})
}

// BenchmarkBuild measures statistics construction — a one-time cost per
// document load.
func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		doc := benchDoc(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Build(doc, 0)
			}
		})
	}
}

// BenchmarkEstimateJoin measures one (cold) cell-pair join estimate — the
// per-edge cost the optimizer pays once per query pattern.
func BenchmarkEstimateJoin(b *testing.B) {
	doc := benchDoc(100000)
	s := Build(doc, 0)
	ta, _ := doc.LookupTag("a")
	tb, _ := doc.LookupTag("b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Defeat the per-stats memo to measure the real work.
		s.memo.Store(nil)
		s.EstimateJoin(ta, tb, pattern.Descendant)
	}
}

// BenchmarkExactJoinCount measures the stack-based exact counter backing
// the oracle estimator.
func BenchmarkExactJoinCount(b *testing.B) {
	doc := benchDoc(100000)
	ta, _ := doc.LookupTag("a")
	tb, _ := doc.LookupTag("b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactJoinCount(doc, ta, tb, pattern.Descendant)
	}
}
