package sjos

import (
	"strings"
	"testing"
)

const resultsXML = `<db>
  <team><name>alpha</name>
    <member><name>ann</name><skill>go</skill><level>3</level></member>
    <member><name>bob</name><skill>sql</skill><level>5</level></member>
  </team>
  <team><name>beta</name>
    <member><name>cat</name><skill>go</skill><level>4</level></member>
  </team>
  <mentor><name>ann</name></mentor>
</db>`

func resultsDB(t *testing.T) *Database {
	t.Helper()
	db, err := LoadXMLString(resultsXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFilterValueJoins(t *testing.T) {
	db := resultsDB(t)
	// Members who are also mentors: member/name value == mentor/name value.
	res, err := db.Query("//db[.//member/name]//mentor/name", MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	// Pattern nodes: db=0, member=1, name=2, mentor=3, name=4.
	joined, err := db.FilterValueJoins(res.Matches, []ValueEq{{L: 2, R: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 1 {
		t.Fatalf("value join kept %d of %d matches, want 1", len(joined), len(res.Matches))
	}
	if db.Value(joined[0][2]) != "ann" {
		t.Fatalf("joined member is %q", db.Value(joined[0][2]))
	}
	// No constraints: identity.
	same, err := db.FilterValueJoins(res.Matches, nil)
	if err != nil || len(same) != len(res.Matches) {
		t.Fatalf("empty constraints changed results: %d vs %d (%v)", len(same), len(res.Matches), err)
	}
	// Out-of-range constraint.
	if _, err := db.FilterValueJoins(res.Matches, []ValueEq{{L: 0, R: 99}}); err == nil {
		t.Fatal("out-of-range constraint accepted")
	}
	if _, err := db.FilterValueJoins(res.Matches, []ValueEq{{L: -1, R: 0}}); err == nil {
		t.Fatal("negative constraint accepted")
	}
}

func TestQueryWhere(t *testing.T) {
	db := resultsDB(t)
	res, err := db.QueryWhere("//db[.//member/name]//mentor/name", MethodFP, []ValueEq{{L: 2, R: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("QueryWhere: %d matches", len(res.Matches))
	}
}

func TestGroupByAndCountBy(t *testing.T) {
	db := resultsDB(t)
	res, err := db.Query("//team//member", MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupBy(res.Matches, 0) // group members by team
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
	if len(groups[0].Matches) != 2 || len(groups[1].Matches) != 1 {
		t.Fatalf("group sizes %d/%d, want 2/1", len(groups[0].Matches), len(groups[1].Matches))
	}
	// Keys are in document order: team alpha before team beta.
	if groups[0].Key > groups[1].Key {
		t.Fatal("groups not in document order")
	}
	counts := CountBy(res.Matches, 0)
	if counts[groups[0].Key] != 2 || counts[groups[1].Key] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestAggregateNode(t *testing.T) {
	db := resultsDB(t)
	res, err := db.Query("//member/level", MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	agg := db.AggregateNode(res.Matches, 1)
	if agg.Count != 3 || agg.Numeric != 3 {
		t.Fatalf("agg = %+v", agg)
	}
	if agg.Sum != 12 || agg.Min != 3 || agg.Max != 5 {
		t.Fatalf("agg = %+v", agg)
	}
}

func TestRenderMatch(t *testing.T) {
	db := resultsDB(t)
	pat := MustParsePattern("//team[name]//member/name")
	res, err := db.QueryPattern(pat, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches")
	}
	s := db.RenderMatch(pat, res.Matches[0])
	for _, want := range []string{"team", "member", "name ="} {
		if !strings.Contains(s, want) {
			t.Errorf("RenderMatch missing %q:\n%s", want, s)
		}
	}
}

func TestEvalPredicateFacade(t *testing.T) {
	p := MustParsePattern(`//x[. >= 10]`)
	if !EvalPredicate("11", p.Nodes[0].Op, p.Nodes[0].Value) {
		t.Fatal("11 >= 10 should hold")
	}
	if EvalPredicate("9", p.Nodes[0].Op, p.Nodes[0].Value) {
		t.Fatal("9 >= 10 should not hold")
	}
}
