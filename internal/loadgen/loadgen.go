// Package loadgen generates open-loop query load: arrivals follow a
// Poisson process at a fixed offered rate, independent of how fast the
// system under test completes work. Latency is measured from the arrival
// instant — queueing delay included — so a saturated server shows its real
// tail latency instead of the flattering closed-loop numbers a
// think-time-per-client driver produces (coordinated omission).
package loadgen

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Config shapes one load run.
type Config struct {
	// Rate is the offered arrival rate in requests per second (> 0).
	Rate float64
	// Duration is how long arrivals are generated; completions past the
	// deadline still finish and are measured.
	Duration time.Duration
	// Workers is the number of concurrent executors draining the arrival
	// queue (<= 0 selects GOMAXPROCS).
	Workers int
	// MaxOutstanding bounds the arrival queue: arrivals past the bound are
	// shed — counted, not executed — modelling a server-side admission
	// queue (<= 0 selects 4 × Workers).
	MaxOutstanding int
	// Seed seeds the arrival process (0 is a valid fixed seed): the same
	// seed offers the same arrival schedule.
	Seed int64
}

// Result reports one load run's accounting and latency distribution.
type Result struct {
	// Offered arrivals split into Started (executed) and Shed (queue full).
	Offered, Started, Shed int
	// Completed and Errors partition the started requests by outcome.
	Completed, Errors int
	// Elapsed is the wall time from first arrival to last completion;
	// Throughput the completed requests per second over it.
	Elapsed    time.Duration
	Throughput float64
	// P50/P95/P99/Max summarize the latency distribution, measured from
	// each request's arrival instant (queueing included).
	P50, P95, P99, Max time.Duration
}

// Run offers cfg.Rate arrivals per second for cfg.Duration, executing each
// accepted arrival as one do() call on a worker pool, and reports the run's
// accounting and latency quantiles. do must be safe for concurrent calls.
func Run(cfg Config, do func() error) (Result, error) {
	if cfg.Rate <= 0 {
		return Result{}, errors.New("loadgen: Rate must be > 0")
	}
	if cfg.Duration <= 0 {
		return Result{}, errors.New("loadgen: Duration must be > 0")
	}
	if do == nil {
		return Result{}, errors.New("loadgen: nil workload")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queueCap := cfg.MaxOutstanding
	if queueCap <= 0 {
		queueCap = 4 * workers
	}

	var res Result
	queue := make(chan time.Time, queueCap)
	lats := make([][]time.Duration, workers)
	errCounts := make([]int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for arrived := range queue {
				err := do()
				lat := time.Since(arrived)
				lats[w] = append(lats[w], lat)
				if err != nil {
					errCounts[w]++
				}
			}
		}(w)
	}

	// Open-loop dispatcher: the next arrival is scheduled from the
	// previous arrival's instant, never from a completion, so a slow
	// server faces an ever-deeper queue instead of a politely waiting
	// client.
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	next := start
	deadline := start.Add(cfg.Duration)
	for next.Before(deadline) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		res.Offered++
		select {
		case queue <- next:
			res.Started++
		default:
			res.Shed++
		}
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
	}
	close(queue)
	wg.Wait()
	res.Elapsed = time.Since(start)

	var all []time.Duration
	for w := range lats {
		all = append(all, lats[w]...)
		res.Errors += errCounts[w]
	}
	res.Completed = len(all) - res.Errors
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50 = percentile(all, 0.50)
		res.P95 = percentile(all, 0.95)
		res.P99 = percentile(all, 0.99)
		res.Max = all[len(all)-1]
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		res.Throughput = float64(res.Completed) / s
	}
	return res, nil
}

// percentile picks the nearest-rank quantile of a sorted sample: the
// ceil(q·n)-th order statistic, so no reported percentile ever understates
// the sample (rounding the rank down would report e.g. the 9th of 10 samples
// as the p92).
func percentile(sorted []time.Duration, q float64) time.Duration {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
