package core

import (
	"math"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/plan"
)

// pathPattern returns //a//b//c (nodes 0,1,2; edges 1,2).
func pathPattern() *pattern.Pattern { return pattern.MustParse("//a//b//c") }

func newTestSpace(t *testing.T, pat *pattern.Pattern) *space {
	t.Helper()
	est := uniformEstimator(t, pat, 100, 0.05)
	return newSpace(pat, est, testModel())
}

func TestStartStatus(t *testing.T) {
	sp := newTestSpace(t, pathPattern())
	s0 := sp.start()
	if s0.edges != 0 {
		t.Errorf("start edges = %b", s0.edges)
	}
	if s0.orderMask != 0b111 {
		t.Errorf("start orderMask = %b", s0.orderMask)
	}
	if s0.cost != sp.scanCost {
		t.Errorf("start cost = %v, want scan cost %v", s0.cost, sp.scanCost)
	}
	if sp.isFinal(s0) {
		t.Error("start must not be final")
	}
}

func TestComponentsAndClusterMask(t *testing.T) {
	sp := newTestSpace(t, pathPattern())
	// Join edge 2 (b-c): clusters {a}, {b,c}.
	comp := sp.components(1 << 2)
	if comp[0] != 0 || comp[1] != 1 || comp[2] != 1 {
		t.Fatalf("components = %v", comp)
	}
	if m := clusterMask(comp, 1); m != 0b110 {
		t.Fatalf("clusterMask = %b", m)
	}
	if m := clusterMask(comp, 0); m != 0b001 {
		t.Fatalf("clusterMask(a) = %b", m)
	}
	// orderNode picks the single order bit within the cluster.
	if got := orderNode(0b101, 0b110); got != 2 {
		t.Fatalf("orderNode = %d", got)
	}
}

// TestDeadendDetection reproduces the paper's Definition 6 situation: after
// joining a//b with output ordered by a, the remaining edge (b,c) needs the
// {a,b} cluster ordered by b — a deadend.
func TestDeadendDetection(t *testing.T) {
	sp := newTestSpace(t, pathPattern())
	deadEdges := uint32(1 << 1)           // edge (a,b) joined
	deadOrder := uint32(1<<0 | 1<<2)      // {ab} ordered by a, {c} by c
	if sp.hasMove(deadEdges, deadOrder) { // (b,c) cannot proceed
		t.Fatal("deadend status reported as having moves")
	}
	aliveOrder := uint32(1<<1 | 1<<2) // {ab} ordered by b instead
	if !sp.hasMove(deadEdges, aliveOrder) {
		t.Fatal("live status reported as deadend")
	}
}

// TestExpandMoveSet verifies the §3 move-model composition for one edge of
// the start status: Desc, Anc, and one sorted variant per other node of the
// merged cluster.
func TestExpandMoveSet(t *testing.T) {
	sp := newTestSpace(t, pathPattern())
	s0 := sp.start()
	type alt struct {
		algo   plan.Algo
		sortBy int
	}
	got := map[int][]alt{}
	sp.expand(s0, moveOpts{}, func(c candidate) {
		got[c.mv.edge] = append(got[c.mv.edge], alt{c.mv.algo, c.mv.sortBy})
	})
	if len(got) != 2 {
		t.Fatalf("moves on %d edges, want 2", len(got))
	}
	for e, alts := range got {
		// Merged cluster has 2 nodes: Desc (order desc), Anc (order
		// anc), Desc+sort(anc) = 3 alternatives.
		if len(alts) != 3 {
			t.Fatalf("edge %d: %d alternatives, want 3: %+v", e, len(alts), alts)
		}
	}
}

// TestExpandFinalMoveRespectsOrderBy checks that the last move only
// generates orderings the query can use.
func TestExpandFinalMoveRespectsOrderBy(t *testing.T) {
	pat := pattern.MustParse("//a//b") // one edge: the first move is final
	for _, ob := range []int{pattern.NoNode, 0, 1} {
		pat.OrderBy = ob
		est := uniformEstimator(t, pat, 50, 0.1)
		sp := newSpace(pat, est, testModel())
		var cands []candidate
		sp.expand(sp.start(), moveOpts{}, func(c candidate) { cands = append(cands, c) })
		switch ob {
		case pattern.NoNode:
			if len(cands) != 1 || cands[0].mv.algo != plan.AlgoDesc {
				t.Fatalf("no OrderBy: candidates %+v", cands)
			}
		case 1:
			if len(cands) != 1 || cands[0].orderMask != 1<<1 {
				t.Fatalf("OrderBy desc: candidates %+v", cands)
			}
		case 0:
			// Anc, or Desc+sort(a): two ways, both ordered by a.
			if len(cands) != 2 {
				t.Fatalf("OrderBy anc: %d candidates", len(cands))
			}
			for _, c := range cands {
				if c.orderMask != 1<<0 {
					t.Fatalf("candidate not ordered by a: %+v", c)
				}
			}
		}
	}
}

// TestLeftDeepMoveRestriction: with leftDeepOnly, a move joining two
// multi-node clusters is refused.
func TestLeftDeepMoveRestriction(t *testing.T) {
	pat := pattern.MustParse("//a[b]//c[d]") // a=0,b=1,c=2,d=3; edges b,c,d
	est := uniformEstimator(t, pat, 100, 0.05)
	sp := newSpace(pat, est, testModel())
	// Status: {a,b} ordered a, {c,d} ordered c — joined edges 1 and 3.
	s := &status{
		edges:     1<<1 | 1<<3,
		orderMask: 1<<0 | 1<<2,
		level:     2,
	}
	var all, ld int
	sp.expand(s, moveOpts{}, func(candidate) { all++ })
	sp.expand(s, moveOpts{leftDeepOnly: true}, func(candidate) { ld++ })
	if all == 0 {
		t.Fatal("unrestricted expansion found no moves")
	}
	if ld != 0 {
		t.Fatalf("left-deep expansion allowed joining two composites (%d moves)", ld)
	}
}

// TestLookaheadReducesGeneratedStatuses: DPP′ materialises deadend statuses
// that DPP refuses to create.
func TestLookaheadReducesGeneratedStatuses(t *testing.T) {
	pat := figure1Pattern()
	for seed := int64(0); seed < 5; seed++ {
		est := skewedEstimator(t, pat, 2000+seed)
		withLA, err := DPP(pat, est, testModel())
		if err != nil {
			t.Fatal(err)
		}
		withoutLA, err := DPPNoLookahead(pat, est, testModel())
		if err != nil {
			t.Fatal(err)
		}
		if withLA.Counters.StatusesGenerated >= withoutLA.Counters.StatusesGenerated {
			t.Errorf("seed %d: lookahead generated %d statuses, DPP' %d",
				seed, withLA.Counters.StatusesGenerated, withoutLA.Counters.StatusesGenerated)
		}
	}
}

// TestUbCostIsNonNegativeAndShrinks: the remaining-cost estimate decreases
// (weakly) as more edges are joined, and is zero at final statuses.
func TestUbCost(t *testing.T) {
	pat := figure1Pattern()
	est := skewedEstimator(t, pat, 3)
	sp := newSpace(pat, est, testModel())
	full := sp.allEdges
	if ub := sp.ubCost(full); ub != 0 {
		t.Fatalf("ubCost(final) = %v", ub)
	}
	ub0 := sp.ubCost(0)
	if ub0 <= 0 {
		t.Fatalf("ubCost(start) = %v", ub0)
	}
	// Along any chain of edge additions the estimate stays non-negative
	// and memoisation returns identical values.
	edges := uint32(0)
	for e := 1; e < pat.N(); e++ {
		edges |= 1 << uint(e)
		ub := sp.ubCost(edges)
		if ub < 0 {
			t.Fatalf("ubCost negative at %b", edges)
		}
		if again := sp.ubCost(edges); again != ub {
			t.Fatalf("ubCost memo unstable at %b: %v vs %v", edges, ub, again)
		}
	}
}

// TestFinalizeCostConsistency: the plan extracted from a search reproduces
// its claimed cost when re-costed from scratch.
func TestFinalizeCostConsistency(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pat := figure1Pattern()
		est := skewedEstimator(t, pat, 5000+seed)
		res, err := DPP(pat, est, testModel())
		if err != nil {
			t.Fatal(err)
		}
		if got := recost(est, testModel(), res.Plan); math.Abs(got-res.Cost) > 1e-6*res.Cost {
			t.Fatalf("seed %d: Cost %v, recost %v", seed, res.Cost, got)
		}
	}
}
