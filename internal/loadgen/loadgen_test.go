package loadgen

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAccounting(t *testing.T) {
	var calls atomic.Int64
	res, err := Run(Config{Rate: 2000, Duration: 100 * time.Millisecond, Workers: 4, MaxOutstanding: 8, Seed: 1},
		func() error {
			calls.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Started == 0 || res.Completed == 0 {
		t.Fatalf("no work ran: %+v", res)
	}
	if res.Offered != res.Started+res.Shed {
		t.Fatalf("offered %d != started %d + shed %d", res.Offered, res.Started, res.Shed)
	}
	if res.Completed+res.Errors != res.Started {
		t.Fatalf("completed %d + errors %d != started %d", res.Completed, res.Errors, res.Started)
	}
	if int(calls.Load()) != res.Started {
		t.Fatalf("workload ran %d times, started %d", calls.Load(), res.Started)
	}
	// 4 workers at 1 ms service time serve ~4000/s; offering 2000/s with
	// an 8-deep queue must shed only under scheduling jitter, and the
	// latency floor is the service time.
	if res.P50 < time.Millisecond {
		t.Fatalf("p50 %v below the service time", res.P50)
	}
	if res.P50 > res.P95 || res.P95 > res.P99 || res.P99 > res.Max {
		t.Fatalf("quantiles out of order: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput %v", res.Throughput)
	}
}

func TestRunShedsWhenSaturated(t *testing.T) {
	// One worker at 5 ms per request serves 200/s; offering 2000/s with a
	// 2-deep queue must shed most arrivals rather than queue unboundedly.
	res, err := Run(Config{Rate: 2000, Duration: 80 * time.Millisecond, Workers: 1, MaxOutstanding: 2, Seed: 2},
		func() error { time.Sleep(5 * time.Millisecond); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("saturated run shed nothing: %+v", res)
	}
	if res.Started > res.Offered/2 {
		t.Fatalf("started %d of %d offered — queue bound not enforced", res.Started, res.Offered)
	}
}

func TestRunCountsErrors(t *testing.T) {
	boom := errors.New("boom")
	res, err := Run(Config{Rate: 1000, Duration: 50 * time.Millisecond, Workers: 2, Seed: 3},
		func() error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != res.Started || res.Completed != 0 {
		t.Fatalf("all calls failed but accounting says %+v", res)
	}
}

func TestRunValidates(t *testing.T) {
	if _, err := Run(Config{Rate: 0, Duration: time.Second}, func() error { return nil }); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(Config{Rate: 1, Duration: 0}, func() error { return nil }); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Run(Config{Rate: 1, Duration: time.Second}, nil); err == nil {
		t.Fatal("nil workload accepted")
	}
}

// TestPercentileNearestRank pins the documented nearest-rank definition
// (ceil(q·n)-1, 0-indexed) on awkward (q, n) pairs. The old implementation
// rounded the rank (int(q·n+0.5)-1), which e.g. reported the 9th of 10
// samples as the p92 — understating tails.
func TestPercentileNearestRank(t *testing.T) {
	mk := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = time.Duration(i+1) * time.Millisecond
		}
		return s
	}
	cases := []struct {
		q    float64
		n    int
		want int // 1-based rank = sample value in ms
	}{
		{0.92, 10, 10}, // ceil(9.2) = 10; rounding gave 9
		{0.50, 10, 5},
		{0.95, 10, 10}, // ceil(9.5) = 10; rounding gave 10 too, but by luck
		{0.99, 100, 99},
		{0.999, 100, 100}, // ceil(99.9) = 100; rounding gave 100
		{0.95, 100, 95},
		{0.95, 3, 3},  // ceil(2.85) = 3; rounding gave 3
		{0.25, 3, 1},  // ceil(0.75) = 1; rounding gave 1
		{0.10, 4, 1},  // ceil(0.4) = 1; rounding gave 0 → clamped to 1
		{0.51, 2, 2},  // ceil(1.02) = 2; rounding gave 1
		{0.50, 1, 1},
		{1.00, 7, 7},
	}
	for _, c := range cases {
		got := percentile(mk(c.n), c.q)
		want := time.Duration(c.want) * time.Millisecond
		if got != want {
			t.Errorf("percentile(q=%v, n=%d) = %v, want %v (rank %d)", c.q, c.n, got, want, c.want)
		}
	}
}

// TestRunAccountingProperty checks the accounting invariants across seeds
// and mixed success/failure workloads: every offered arrival is either
// started or shed, and every started request completes or errors — nothing
// is double-counted or lost, at any interleaving.
func TestRunAccountingProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		var n atomic.Int64
		res, err := Run(Config{
			Rate:           1500,
			Duration:       60 * time.Millisecond,
			Workers:        3,
			MaxOutstanding: 4,
			Seed:           seed,
		}, func() error {
			if n.Add(1)%3 == 0 {
				return errors.New("synthetic failure")
			}
			time.Sleep(500 * time.Microsecond)
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Offered != res.Started+res.Shed {
			t.Fatalf("seed %d: Offered %d != Started %d + Shed %d", seed, res.Offered, res.Started, res.Shed)
		}
		if res.Started != res.Completed+res.Errors {
			t.Fatalf("seed %d: Started %d != Completed %d + Errors %d", seed, res.Started, res.Completed, res.Errors)
		}
		if int(n.Load()) != res.Started {
			t.Fatalf("seed %d: workload ran %d times, Started %d", seed, n.Load(), res.Started)
		}
		if res.Started > 0 && (res.P50 > res.P95 || res.P95 > res.P99 || res.P99 > res.Max) {
			t.Fatalf("seed %d: quantiles out of order: %+v", seed, res)
		}
	}
}
