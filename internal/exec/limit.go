package exec

// Limit caps an operator's output at n tuples, closing early. Combined with
// fully-pipelined plans it delivers the paper's §3.4 motivation measurably:
// non-blocking plans produce their first results long before the full
// result is computed, which blocking (sort-containing) plans cannot do.
type Limit struct {
	input Operator
	n     int
	done  int
}

// NewLimit wraps input, emitting at most n tuples.
func NewLimit(input Operator, n int) *Limit {
	if n < 0 {
		n = 0
	}
	return &Limit{input: input, n: n}
}

// Schema implements Operator.
func (l *Limit) Schema() *Schema { return l.input.Schema() }

// Open implements Operator.
func (l *Limit) Open(ctx *Context) error { return l.input.Open(ctx) }

// Next implements Operator.
func (l *Limit) Next() (Tuple, bool, error) {
	if l.done >= l.n {
		return nil, false, nil
	}
	t, ok, err := l.input.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	l.done++
	return t, true, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.input.Close() }
