package exec

import (
	"fmt"
	"strings"

	"sjos/internal/pattern"
	"sjos/internal/plan"
)

// analyzed wraps an operator and counts its output tuples, giving
// EXPLAIN ANALYZE its per-operator actual cardinalities.
type analyzed struct {
	inner Operator
	rows  int
}

func (a *analyzed) Schema() *Schema { return a.inner.Schema() }

func (a *analyzed) Open(ctx *Context) error { return a.inner.Open(ctx) }

func (a *analyzed) Next() (Tuple, bool, error) {
	t, ok, err := a.inner.Next()
	if ok {
		a.rows++
	}
	return t, ok, err
}

func (a *analyzed) Close() error { return a.inner.Close() }

// Analysis reports one plan operator's estimated vs actual output
// cardinality, in the order plan nodes are visited pre-order.
type Analysis struct {
	Node   *plan.Node
	Actual int
	Est    float64

	counter *analyzed
}

// BuildAnalyzed compiles a plan with a counting wrapper around every
// operator. The returned analyses are filled in as execution proceeds and
// are valid after the root has been drained.
func BuildAnalyzed(pat *pattern.Pattern, n *plan.Node) (Operator, []*Analysis, error) {
	var all []*Analysis
	op, err := buildAnalyzed(pat, n, &all)
	return op, all, err
}

func buildAnalyzed(pat *pattern.Pattern, n *plan.Node, out *[]*Analysis) (Operator, error) {
	an := &Analysis{Node: n, Est: n.EstCard}
	*out = append(*out, an)
	var inner Operator
	switch n.Op {
	case plan.OpIndexScan:
		if n.PatternNode < 0 || n.PatternNode >= pat.N() {
			return nil, fmt.Errorf("exec: scan of pattern node %d out of range", n.PatternNode)
		}
		inner = NewIndexScan(pat, n.PatternNode)
	case plan.OpSort:
		in, err := buildAnalyzed(pat, n.Left, out)
		if err != nil {
			return nil, err
		}
		s, err := NewSort(in, n.SortBy)
		if err != nil {
			return nil, err
		}
		inner = s
	case plan.OpStructuralJoin:
		left, err := buildAnalyzed(pat, n.Left, out)
		if err != nil {
			return nil, err
		}
		right, err := buildAnalyzed(pat, n.Right, out)
		if err != nil {
			return nil, err
		}
		j, err := NewStackTreeJoin(left, right, n.AncNode, n.DescNode, n.Axis, n.Algo)
		if err != nil {
			return nil, err
		}
		inner = j
	default:
		return nil, fmt.Errorf("exec: unknown plan operator %d", n.Op)
	}
	wrapped := &analyzed{inner: inner}
	an.counter = wrapped
	return wrapped, nil
}

// Finish snapshots the counters into Actual; call after draining the root.
func Finish(all []*Analysis) {
	for _, a := range all {
		if a.counter != nil {
			a.Actual = a.counter.rows
		}
	}
}

// FormatAnalysis renders the plan tree with estimated and actual output
// cardinalities side by side — the library's EXPLAIN ANALYZE.
func FormatAnalysis(pat *pattern.Pattern, root *plan.Node, all []*Analysis) string {
	byNode := make(map[*plan.Node]*Analysis, len(all))
	for _, a := range all {
		byNode[a.Node] = a
	}
	var sb strings.Builder
	var walk func(n *plan.Node, depth int)
	walk = func(n *plan.Node, depth int) {
		indent := strings.Repeat("  ", depth)
		tag := func(u int) string {
			if u >= 0 && u < pat.N() {
				return fmt.Sprintf("%s($%d)", pat.Nodes[u].Tag, u)
			}
			return fmt.Sprintf("$%d", u)
		}
		switch n.Op {
		case plan.OpIndexScan:
			fmt.Fprintf(&sb, "%sIndexScan %s", indent, tag(n.PatternNode))
		case plan.OpSort:
			fmt.Fprintf(&sb, "%sSort by %s", indent, tag(n.SortBy))
		case plan.OpStructuralJoin:
			fmt.Fprintf(&sb, "%s%s %s %s %s", indent, n.Algo, tag(n.AncNode), n.Axis, tag(n.DescNode))
		}
		if a := byNode[n]; a != nil {
			ratio := "-"
			if a.Actual > 0 && a.Est > 0 {
				ratio = fmt.Sprintf("%.2fx", a.Est/float64(a.Actual))
			}
			fmt.Fprintf(&sb, "  [est≈%.0f actual=%d err=%s]", a.Est, a.Actual, ratio)
		}
		sb.WriteString("\n")
		if n.Left != nil {
			walk(n.Left, depth+1)
		}
		if n.Right != nil {
			walk(n.Right, depth+1)
		}
	}
	walk(root, 0)
	return sb.String()
}
