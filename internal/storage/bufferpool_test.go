package storage

import (
	"errors"
	"testing"
)

func writePages(t *testing.T, f *MemFile, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		var p Page
		p[PageHeaderSize] = byte(i)
		p[PageHeaderSize+1] = byte(i >> 8)
		SealPage(PageID(i), &p)
		if err := f.WritePage(PageID(i), &p); err != nil {
			t.Fatalf("WritePage(%d): %v", i, err)
		}
	}
}

func TestMemFileBasics(t *testing.T) {
	f := NewMemFile()
	writePages(t, f, 5)
	if f.NumPages() != 5 {
		t.Fatalf("NumPages = %d", f.NumPages())
	}
	var p Page
	if err := f.ReadPage(3, &p); err != nil {
		t.Fatal(err)
	}
	if p[PageHeaderSize] != 3 {
		t.Fatalf("page 3 content = %d", p[PageHeaderSize])
	}
	if err := f.ReadPage(9, &p); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("read past end: err = %v", err)
	}
	if err := f.WritePage(7, &p); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("write with hole: err = %v", err)
	}
	if f.Reads() != 1 {
		t.Fatalf("Reads = %d, want 1", f.Reads())
	}
}

func TestBufferPoolHitsAndMisses(t *testing.T) {
	f := NewMemFile()
	writePages(t, f, 10)
	bp := NewBufferPool(f, 4)
	for i := 0; i < 4; i++ {
		pg, err := bp.Get(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if pg[PageHeaderSize] != byte(i) {
			t.Fatalf("page %d content = %d", i, pg[PageHeaderSize])
		}
		bp.Unpin(PageID(i), false)
	}
	st := bp.Stats()
	if st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("after cold reads: %+v", st)
	}
	for i := 0; i < 4; i++ {
		if _, err := bp.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(PageID(i), false)
	}
	st = bp.Stats()
	if st.Hits != 4 {
		t.Fatalf("after warm reads: %+v", st)
	}
}

func TestBufferPoolLRUEviction(t *testing.T) {
	f := NewMemFile()
	writePages(t, f, 10)
	bp := NewBufferPool(f, 2)
	get := func(id PageID) {
		t.Helper()
		if _, err := bp.Get(id); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(id, false)
	}
	get(0)
	get(1)
	get(0) // page 1 is now LRU
	get(2) // evicts page 1
	st := bp.Stats()
	if st.Evicted != 1 {
		t.Fatalf("Evicted = %d, want 1", st.Evicted)
	}
	get(0) // should still be resident
	if got := bp.Stats().Hits; got != 2 {
		t.Fatalf("Hits = %d, want 2 (0 warm twice)", got)
	}
	get(1) // miss again
	if got := bp.Stats().Misses; got != 4 {
		t.Fatalf("Misses = %d, want 4", got)
	}
}

func TestBufferPoolPinnedPagesNotEvicted(t *testing.T) {
	f := NewMemFile()
	writePages(t, f, 10)
	bp := NewBufferPool(f, 2)
	if _, err := bp.Get(0); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Get(1); err != nil {
		t.Fatal(err)
	}
	// Both pinned; a third page cannot be brought in.
	if _, err := bp.Get(2); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("Get with full pinned pool: err = %v", err)
	}
	bp.Unpin(0, false)
	if _, err := bp.Get(2); err != nil {
		t.Fatalf("Get after Unpin: %v", err)
	}
	bp.Unpin(1, false)
	bp.Unpin(2, false)
}

func TestBufferPoolDirtyWriteback(t *testing.T) {
	f := NewMemFile()
	writePages(t, f, 3)
	bp := NewBufferPool(f, 1)
	pg, err := bp.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	pg[100] = 0xAB
	bp.Unpin(0, true)
	// Evict page 0 by touching page 1.
	if _, err := bp.Get(1); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(1, false)
	var raw Page
	if err := f.ReadPage(0, &raw); err != nil {
		t.Fatal(err)
	}
	if raw[100] != 0xAB {
		t.Fatal("dirty page not written back on eviction")
	}
}

func TestBufferPoolFlush(t *testing.T) {
	f := NewMemFile()
	writePages(t, f, 2)
	bp := NewBufferPool(f, 4)
	pg, err := bp.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	pg[200] = 0x55
	bp.Unpin(1, true)
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	var raw Page
	if err := f.ReadPage(1, &raw); err != nil {
		t.Fatal(err)
	}
	if raw[200] != 0x55 {
		t.Fatal("Flush did not persist dirty page")
	}
	// Flush must reseal: the persisted page verifies against its new
	// content.
	if err := VerifyPage(1, &raw); err != nil {
		t.Fatalf("flushed page fails verification: %v", err)
	}
}

func TestBufferPoolUnpinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of unpinned page should panic")
		}
	}()
	bp := NewBufferPool(NewMemFile(), 2)
	bp.Unpin(0, false)
}

func TestBufferPoolDefaultFrames(t *testing.T) {
	bp := NewBufferPool(NewMemFile(), 0)
	if bp.Frames() != DefaultPoolFrames {
		t.Fatalf("Frames = %d, want %d", bp.Frames(), DefaultPoolFrames)
	}
}

// flakyFile wraps a MemFile with switchable read/write failures, for
// exercising the pool's I/O error paths.
type flakyFile struct {
	*MemFile
	failReads  bool
	failWrites bool
}

var errFlaky = errors.New("injected I/O failure")

func (f *flakyFile) ReadPage(id PageID, dst *Page) error {
	if f.failReads {
		return errFlaky
	}
	return f.MemFile.ReadPage(id, dst)
}

func (f *flakyFile) WritePage(id PageID, src *Page) error {
	if f.failWrites {
		return errFlaky
	}
	return f.MemFile.WritePage(id, src)
}

// TestBufferPoolReadFailureAccounting is the regression test for the
// eviction-counter skew: a Get whose ReadPage fails after a victim was
// evicted must not count as an eviction (no replacement page was brought
// in), and the freed frame must be reused by the next Get instead of
// evicting a second victim.
func TestBufferPoolReadFailureAccounting(t *testing.T) {
	mf := NewMemFile()
	writePages(t, mf, 10)
	f := &flakyFile{MemFile: mf}
	bp := NewBufferPool(f, 2)
	get := func(id PageID) {
		t.Helper()
		if _, err := bp.Get(id); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(id, false)
	}
	get(0)
	get(1) // pool at capacity, both unpinned; page 0 is LRU

	f.failReads = true
	if _, err := bp.Get(2); !errors.Is(err, errFlaky) {
		t.Fatalf("Get with failing read: err = %v", err)
	}
	st := bp.Stats()
	// The old code bumped Evicted before attempting the read, reporting a
	// replacement that never happened.
	if st.Evicted != 0 {
		t.Fatalf("Evicted = %d after failed read, want 0", st.Evicted)
	}
	if st.Resident != 1 {
		t.Fatalf("Resident = %d after failed read, want 1 (victim gone, no replacement)", st.Resident)
	}

	// Recovery: the next Get reuses the freed frame — nobody else is
	// evicted for it.
	f.failReads = false
	get(2)
	st = bp.Stats()
	if st.Evicted != 0 {
		t.Fatalf("Evicted = %d after frame reuse, want 0", st.Evicted)
	}
	if st.Resident != 2 {
		t.Fatalf("Resident = %d, want 2", st.Resident)
	}

	// Back at capacity, a genuine replacement counts again.
	get(3)
	if st = bp.Stats(); st.Evicted != 1 {
		t.Fatalf("Evicted = %d after genuine eviction, want 1", st.Evicted)
	}
}

// TestBufferPoolWritebackFailureKeepsVictim: when evicting a dirty page
// whose write-back fails, the victim must stay resident and evictable
// rather than leaking out of both the table and the LRU list.
func TestBufferPoolWritebackFailureKeepsVictim(t *testing.T) {
	mf := NewMemFile()
	writePages(t, mf, 5)
	f := &flakyFile{MemFile: mf}
	bp := NewBufferPool(f, 1)
	pg, err := bp.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	pg[9] = 0x77
	bp.Unpin(0, true)

	f.failWrites = true
	if _, err := bp.Get(1); !errors.Is(err, errFlaky) {
		t.Fatalf("Get with failing write-back: err = %v", err)
	}
	// Victim still resident: getting it again is a hit, not ErrPoolFull.
	hits := bp.Stats().Hits
	if _, err := bp.Get(0); err != nil {
		t.Fatalf("victim page lost after failed write-back: %v", err)
	}
	bp.Unpin(0, false)
	if got := bp.Stats().Hits; got != hits+1 {
		t.Fatalf("Hits = %d, want %d (victim should still be cached)", got, hits+1)
	}

	// Once writes recover, the eviction goes through and the dirty page
	// lands on disk.
	f.failWrites = false
	if _, err := bp.Get(1); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(1, false)
	var raw Page
	if err := mf.ReadPage(0, &raw); err != nil {
		t.Fatal(err)
	}
	if raw[9] != 0x77 {
		t.Fatal("dirty victim not written back after write recovery")
	}
}

// TestBufferPoolDoubleUnpinPanics: the second Unpin of the same pin must
// panic rather than silently corrupting the pin count.
func TestBufferPoolDoubleUnpinPanics(t *testing.T) {
	mf := NewMemFile()
	writePages(t, mf, 2)
	bp := NewBufferPool(mf, 2)
	if _, err := bp.Get(0); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double Unpin should panic")
		}
	}()
	bp.Unpin(0, false)
}
