package datagen

import (
	"testing"

	"sjos/internal/xmltree"
)

func TestGenerateKnownSets(t *testing.T) {
	for _, name := range []string{NameMbench, NameDBLP, NamePers} {
		d, err := Generate(Config{Name: name, Scale: 0.1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: invalid document: %v", name, err)
		}
		if d.NumNodes() < 100 {
			t.Errorf("%s: suspiciously small (%d nodes)", name, d.NumNodes())
		}
	}
	if _, err := Generate(Config{Name: "nope"}); err == nil {
		t.Fatal("unknown data set accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range []string{NameMbench, NameDBLP, NamePers} {
		a, _ := Generate(Config{Name: name, Scale: 0.05, Seed: 7})
		b, _ := Generate(Config{Name: name, Scale: 0.05, Seed: 7})
		if a.NumNodes() != b.NumNodes() {
			t.Fatalf("%s: nondeterministic size %d vs %d", name, a.NumNodes(), b.NumNodes())
		}
		for i := 0; i < a.NumNodes(); i++ {
			id := xmltree.NodeID(i)
			if a.Tag(id) != b.Tag(id) || a.Start(id) != b.Start(id) || a.Value(id) != b.Value(id) {
				t.Fatalf("%s: documents diverge at node %d", name, i)
			}
		}
		c, _ := Generate(Config{Name: name, Scale: 0.05, Seed: 8})
		if c.NumNodes() == a.NumNodes() {
			same := true
			for i := 0; i < a.NumNodes() && same; i++ {
				id := xmltree.NodeID(i)
				same = a.Tag(id) == c.Tag(id) && a.Value(id) == c.Value(id)
			}
			if same {
				t.Errorf("%s: different seeds produced identical documents", name)
			}
		}
	}
}

func TestScaleGrowsSize(t *testing.T) {
	for _, name := range []string{NameMbench, NameDBLP, NamePers} {
		small, _ := Generate(Config{Name: name, Scale: 0.05})
		big, _ := Generate(Config{Name: name, Scale: 0.2})
		if big.NumNodes() < 2*small.NumNodes() {
			t.Errorf("%s: scale 0.2 (%d nodes) not ≫ scale 0.05 (%d nodes)",
				name, big.NumNodes(), small.NumNodes())
		}
	}
}

func TestPersStructure(t *testing.T) {
	d := Pers(1, 0)
	if got := d.NumNodes(); got < 4000 || got > 8000 {
		t.Errorf("Pers scale 1 = %d nodes, want ≈ 5000", got)
	}
	mgr, ok := d.LookupTag("manager")
	if !ok {
		t.Fatal("no manager nodes")
	}
	emp, ok := d.LookupTag("employee")
	if !ok {
		t.Fatal("no employee nodes")
	}
	if _, ok := d.LookupTag("department"); !ok {
		t.Fatal("no department nodes")
	}
	if _, ok := d.LookupTag("name"); !ok {
		t.Fatal("no name nodes")
	}
	// Recursion: some manager must be a proper ancestor of another.
	mgrs := d.NodesWithTag(mgr)
	recursive := false
	for _, a := range mgrs {
		for _, b := range mgrs {
			if a != b && d.IsAncestor(a, b) {
				recursive = true
			}
		}
	}
	if !recursive {
		t.Error("Pers has no manager-under-manager recursion")
	}
	// Every employee's parent is a manager.
	for _, e := range d.NodesWithTag(emp) {
		if d.TagName(d.Tag(d.Parent(e))) != "manager" {
			t.Fatalf("employee %d has parent %s", e, d.TagName(d.Tag(d.Parent(e))))
		}
	}
}

func TestMbenchStructure(t *testing.T) {
	d := Mbench(1, 0)
	if got := d.NumNodes(); got < 50000 || got > 100000 {
		t.Errorf("Mbench scale 1 = %d nodes, want ≈ 74000", got)
	}
	nest, ok := d.LookupTag("eNest")
	if !ok {
		t.Fatal("no eNest nodes")
	}
	// Depth: some eNest at level >= 6.
	deep := false
	for _, n := range d.NodesWithTag(nest) {
		if d.Level(n) >= 6 {
			deep = true
			break
		}
	}
	if !deep {
		t.Error("Mbench has no deep nesting")
	}
	if _, ok := d.LookupTag("aSixtyFour"); !ok {
		t.Error("missing aSixtyFour")
	}
	if _, ok := d.LookupTag("eOccasional"); !ok {
		t.Error("missing eOccasional")
	}
}

func TestDBLPStructure(t *testing.T) {
	d := DBLP(1, 0)
	if got := d.NumNodes(); got < 40000 || got > 70000 {
		t.Errorf("DBLP scale 1 = %d nodes, want ≈ 50000", got)
	}
	art, ok := d.LookupTag("article")
	if !ok {
		t.Fatal("no articles")
	}
	// Shallow: every article sits directly under the root.
	for _, a := range d.NodesWithTag(art) {
		if d.Level(a) != 1 {
			t.Fatalf("article at level %d", d.Level(a))
		}
	}
	for _, tag := range []string{"author", "title", "year", "inproceedings"} {
		if _, ok := d.LookupTag(tag); !ok {
			t.Errorf("missing %s", tag)
		}
	}
}

func TestFoldedPersScalesMatches(t *testing.T) {
	d := Pers(0.2, 0)
	mgr, _ := d.LookupTag("manager")
	base := d.TagCount(mgr)
	f := xmltree.Fold(d, 10)
	fm, _ := f.LookupTag("manager")
	if got := f.TagCount(fm); got != base*10 {
		t.Fatalf("folded manager count %d, want %d", got, base*10)
	}
}
