// Package metrics is the process-wide observability registry behind
// sjos.Database.Metrics(): lock-free counters for queries served, errors,
// slow queries and in-flight executions, plus a fixed-bucket exponential
// latency histogram giving p50/p95/p99 without allocation on the hot path.
//
// Every counter is an atomic; Observe costs a handful of atomic adds, so
// the registry can sit on the Run hot path of a service handling heavy
// concurrent traffic without a lock becoming the bottleneck.
package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// numBuckets is the latency histogram resolution: bucket i covers latencies
// up to 1µs·2^i, so 32 buckets span 1µs .. ~71min with the last bucket
// absorbing everything beyond.
const numBuckets = 32

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

// bucketFor returns the index of the bucket a latency falls into.
func bucketFor(d time.Duration) int {
	for i := 0; i < numBuckets-1; i++ {
		if d <= bucketBound(i) {
			return i
		}
	}
	return numBuckets - 1
}

// Registry accumulates query-level counters for one database process. The
// zero value is ready to use; all methods are safe for concurrent use.
type Registry struct {
	queries  atomic.Uint64
	errors   atomic.Uint64
	slow     atomic.Uint64
	inFlight atomic.Int64
	batches  atomic.Uint64
	skipped  atomic.Uint64
	panics   atomic.Uint64
	driftEv  atomic.Uint64

	latCount atomic.Uint64
	latSum   atomic.Int64 // nanoseconds
	buckets  [numBuckets]atomic.Uint64
}

// QueryStarted marks one execution as in flight.
func (r *Registry) QueryStarted() { r.inFlight.Add(1) }

// QueryFinished records the completion of an execution started with
// QueryStarted: it decrements the in-flight gauge, counts the query (and
// the error, if any) and folds the latency into the histogram.
func (r *Registry) QueryFinished(d time.Duration, err error) {
	r.inFlight.Add(-1)
	r.queries.Add(1)
	if err != nil {
		r.errors.Add(1)
	}
	r.latCount.Add(1)
	r.latSum.Add(int64(d))
	r.buckets[bucketFor(d)].Add(1)
}

// SlowQuery counts one query that crossed the slow-query threshold.
func (r *Registry) SlowQuery() { r.slow.Add(1) }

// RecoveredPanic counts one panic recovered at a query boundary and
// converted into a typed error.
func (r *Registry) RecoveredPanic() { r.panics.Add(1) }

// DriftEviction counts one cached plan evicted by the adaptive feedback
// loop because its executed est-vs-actual drift crossed the threshold.
func (r *Registry) DriftEviction() { r.driftEv.Add(1) }

// ExecBatched folds one execution's batched-path counters into the
// registry: batches driven through the plan root and index postings
// bypassed by skip-ahead seeks.
func (r *Registry) ExecBatched(batches, skipped int) {
	if batches > 0 {
		r.batches.Add(uint64(batches))
	}
	if skipped > 0 {
		r.skipped.Add(uint64(skipped))
	}
}

// Snapshot is a consistent-enough point-in-time copy of the registry: each
// counter is read atomically (the set is not read under one lock, which is
// fine for monitoring).
type Snapshot struct {
	// Queries counts completed executions; Errors the subset that failed.
	Queries, Errors uint64
	// SlowQueries counts executions reported to the slow-query log.
	SlowQueries uint64
	// InFlight is the number of executions currently running.
	InFlight int64
	// Batches counts NextBatch calls driven through plan roots; Skipped
	// counts index postings bypassed by skip-ahead seeks. Both stay 0
	// while every query runs tuple-at-a-time.
	Batches, Skipped uint64
	// RecoveredPanics counts panics recovered at query boundaries (each one
	// is a bug that became a typed error instead of a crash).
	RecoveredPanics uint64
	// DriftEvictions counts cached plans evicted by the adaptive feedback
	// loop (executed est-vs-actual drift crossed the threshold).
	DriftEvictions uint64
	// TotalTime is the summed latency of all completed executions.
	TotalTime time.Duration
	// P50, P95 and P99 are latency quantiles (bucket upper bounds of the
	// exponential histogram, so they are upper estimates within 2×).
	P50, P95, P99 time.Duration

	buckets [numBuckets]uint64
}

// Snapshot captures the current counters and derives the quantiles.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Queries:         r.queries.Load(),
		Errors:          r.errors.Load(),
		SlowQueries:     r.slow.Load(),
		InFlight:        r.inFlight.Load(),
		Batches:         r.batches.Load(),
		Skipped:         r.skipped.Load(),
		RecoveredPanics: r.panics.Load(),
		DriftEvictions:  r.driftEv.Load(),
		TotalTime:       time.Duration(r.latSum.Load()),
	}
	for i := range s.buckets {
		s.buckets[i] = r.buckets[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile returns the latency below which fraction q of observations fall
// (the upper bound of the histogram bucket containing the q-th
// observation). 0 is returned when nothing has been observed.
func (s Snapshot) Quantile(q float64) time.Duration {
	var total uint64
	for _, c := range s.buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range s.buckets {
		cum += c
		if cum > rank {
			return bucketBound(i)
		}
	}
	return bucketBound(numBuckets - 1)
}

// WriteText renders the snapshot in the Prometheus text exposition format
// under the given metric-name prefix (e.g. "sjos").
func (s Snapshot) WriteText(w io.Writer, prefix string) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %d\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	counter("queries_total", "Completed query executions.", s.Queries)
	counter("query_errors_total", "Query executions that returned an error.", s.Errors)
	counter("slow_queries_total", "Queries that crossed the slow-query threshold.", s.SlowQueries)
	counter("exec_batches_total", "Tuple batches driven through plan roots.", s.Batches)
	counter("exec_skipped_tuples_total", "Index postings bypassed by skip-ahead seeks.", s.Skipped)
	counter("recovered_panics_total", "Panics recovered at query boundaries.", s.RecoveredPanics)
	fmt.Fprintf(w, "# HELP %s_queries_in_flight Query executions currently running.\n# TYPE %s_queries_in_flight gauge\n%s_queries_in_flight %d\n",
		prefix, prefix, prefix, s.InFlight)
	fmt.Fprintf(w, "# HELP %s_query_latency_seconds Query latency distribution.\n# TYPE %s_query_latency_seconds summary\n", prefix, prefix)
	for _, q := range []struct {
		label string
		v     time.Duration
	}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}} {
		fmt.Fprintf(w, "%s_query_latency_seconds{quantile=%q} %g\n", prefix, q.label, q.v.Seconds())
	}
	fmt.Fprintf(w, "%s_query_latency_seconds_sum %g\n", prefix, s.TotalTime.Seconds())
	fmt.Fprintf(w, "%s_query_latency_seconds_count %d\n", prefix, s.Queries)
}
