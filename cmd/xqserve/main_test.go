package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sjos"
)

func newServer(t *testing.T) (*sjos.Database, *httptest.Server) {
	t.Helper()
	db, err := sjos.LoadXMLString(`<db>
	  <manager><name>alice</name><employee><name>bob</name></employee></manager>
	  <manager><name>carol</name><department><name>ops</name></department></manager>
	</db>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(db, sjos.MethodDPP))
	t.Cleanup(srv.Close)
	return db, srv
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestServeHealthz(t *testing.T) {
	_, srv := newServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestServeQuery(t *testing.T) {
	_, srv := newServer(t)
	var r queryResponse
	getJSON(t, srv.URL+"/query?q=//manager/name", &r)
	if r.Count != 2 || len(r.Matches) != 2 {
		t.Fatalf("response: %+v", r)
	}
	if r.Plan == "" || r.Trace != nil {
		t.Fatalf("plan/trace: %+v", r)
	}
	found := false
	for _, row := range r.Matches {
		for _, cell := range row {
			if strings.Contains(cell, "alice") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("alice missing from matches: %+v", r.Matches)
	}
}

func TestServeQueryOptions(t *testing.T) {
	_, srv := newServer(t)
	var r queryResponse
	getJSON(t, srv.URL+"/query?q=//manager/name&count=1&trace=1&method=FP", &r)
	if r.Count != 2 || r.Matches != nil {
		t.Fatalf("count=1 response: %+v", r)
	}
	if r.Trace == nil || r.Trace.Rows != 2 {
		t.Fatalf("trace=1 response trace: %+v", r.Trace)
	}
	getJSON(t, srv.URL+"/query?q=//manager/name&limit=1", &r)
	if len(r.Matches) != 1 {
		t.Fatalf("limit=1 matches: %+v", r.Matches)
	}
}

func TestServeQueryErrors(t *testing.T) {
	_, srv := newServer(t)
	for _, path := range []string{
		"/query",
		"/query?q=///bad[",
		"/query?q=//a&method=BOGUS",
		"/query?q=//a&limit=-1",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestServeMetrics(t *testing.T) {
	_, srv := newServer(t)
	var r queryResponse
	getJSON(t, srv.URL+"/query?q=//manager/name", &r)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{"sjos_queries_total 1", "sjos_plancache_misses_total 1", "sjos_pool_resident_pages"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

func TestServeSlow(t *testing.T) {
	db, srv := newServer(t)
	db.SetSlowQueryLog(time.Nanosecond, nil)
	var r queryResponse
	getJSON(t, srv.URL+"/query?q=//manager/name", &r)
	var entries []sjos.SlowQueryEntry
	getJSON(t, srv.URL+"/slow", &entries)
	if len(entries) != 1 {
		t.Fatalf("%d slow entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Fingerprint == "" || e.Matches != 2 || e.Trace == nil {
		t.Fatalf("slow entry: %+v", e)
	}
}

// TestServeShedsLoad: admission errors surface as 503 + Retry-After, not 400.
func TestServeShedsLoad(t *testing.T) {
	db, err := sjos.LoadXMLString(`<db><manager><name>alice</name></manager></db>`,
		&sjos.Options{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(db, sjos.MethodDPP))
	t.Cleanup(srv.Close)
	// Draining with nothing in flight completes instantly and flips every
	// later arrival into the shed path.
	if err := db.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/query?q=//manager/name")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}
