package plan

// Remap returns a deep copy of the plan with every pattern-node reference
// translated through m (m[old] = new). The plan cache stores plans in the
// canonical node numbering of their pattern's fingerprint and transports
// them to a concrete query's numbering with the inverse permutation; because
// the result is always a fresh tree, cached plans are never shared mutably
// between concurrent executions.
func Remap(n *Node, m []int) *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Left = Remap(n.Left, m)
	c.Right = Remap(n.Right, m)
	switch n.Op {
	case OpIndexScan:
		c.PatternNode = m[n.PatternNode]
	case OpStructuralJoin:
		c.AncNode = m[n.AncNode]
		c.DescNode = m[n.DescNode]
	case OpSort:
		c.SortBy = m[n.SortBy]
	}
	if n.OrderedBy >= 0 && n.OrderedBy < len(m) {
		c.OrderedBy = m[n.OrderedBy]
	}
	return &c
}
