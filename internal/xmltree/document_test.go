package xmltree

import (
	"math/rand"
	"testing"
)

// buildSample constructs the small personnel tree used across this package's
// tests:
//
//	<db>
//	  <manager><name/><employee><name/></employee>
//	            <manager><department><name/></department></manager></manager>
//	  <employee><name/></employee>
//	</db>
func buildSample(t *testing.T) *Document {
	t.Helper()
	b := NewBuilder()
	b.Open("db", "")
	b.Open("manager", "alice")
	b.Leaf("name", "alice")
	b.Open("employee", "bob")
	b.Leaf("name", "bob")
	b.Close()
	b.Open("manager", "carol")
	b.Open("department", "tools")
	b.Leaf("name", "tools")
	b.Close()
	b.Close()
	b.Close()
	b.Open("employee", "dan")
	b.Leaf("name", "dan")
	b.Close()
	b.Close()
	d, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d
}

func TestBuilderBasics(t *testing.T) {
	d := buildSample(t)
	if got, want := d.NumNodes(), 10; got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	if d.Root() != 0 {
		t.Fatalf("Root = %d, want 0", d.Root())
	}
	if d.Level(d.Root()) != 0 {
		t.Fatalf("root level = %d", d.Level(d.Root()))
	}
	mgr, ok := d.LookupTag("manager")
	if !ok {
		t.Fatal("manager tag missing")
	}
	if got := d.TagCount(mgr); got != 2 {
		t.Fatalf("manager count = %d, want 2", got)
	}
	if _, ok := d.LookupTag("nosuch"); ok {
		t.Fatal("LookupTag found nonexistent tag")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Open("a", "")
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish with open element should fail")
	}

	b = NewBuilder()
	b.Close()
	if _, err := b.Finish(); err == nil {
		t.Fatal("Close without Open should fail")
	}

	b = NewBuilder()
	b.Leaf("a", "")
	b.Leaf("b", "")
	if _, err := b.Finish(); err == nil {
		t.Fatal("two roots should fail")
	}

	b = NewBuilder()
	if _, err := b.Finish(); err == nil {
		t.Fatal("empty document should fail")
	}
}

func TestStructuralPredicates(t *testing.T) {
	d := buildSample(t)
	mgrs := d.NodesWithTag(mustTag(t, d, "manager"))
	names := d.NodesWithTag(mustTag(t, d, "name"))
	outer, inner := mgrs[0], mgrs[1]
	if !d.IsAncestor(outer, inner) {
		t.Error("outer manager should be ancestor of inner manager")
	}
	if d.IsAncestor(inner, outer) {
		t.Error("ancestor relation must be asymmetric")
	}
	if d.IsAncestor(outer, outer) {
		t.Error("ancestor relation must be irreflexive")
	}
	if !d.IsParent(d.Root(), outer) {
		t.Error("db should be parent of outer manager")
	}
	if d.IsParent(d.Root(), inner) {
		t.Error("db is grandparent, not parent, of inner manager")
	}
	// All name nodes under outer manager: alice, bob, tools.
	cnt := 0
	for _, nm := range names {
		if d.IsAncestor(outer, nm) {
			cnt++
		}
	}
	if cnt != 3 {
		t.Errorf("names under outer manager = %d, want 3", cnt)
	}
}

func TestChildren(t *testing.T) {
	d := buildSample(t)
	root := d.Root()
	kids := d.Children(root)
	if len(kids) != 2 {
		t.Fatalf("root has %d children, want 2", len(kids))
	}
	for _, k := range kids {
		if d.Parent(k) != root {
			t.Errorf("child %d has parent %d", k, d.Parent(k))
		}
	}
	leaf := d.NodesWithTag(mustTag(t, d, "name"))[0]
	if got := d.Children(leaf); len(got) != 0 {
		t.Errorf("leaf has children: %v", got)
	}
}

func mustTag(t *testing.T, d *Document, name string) TagID {
	t.Helper()
	id, ok := d.LookupTag(name)
	if !ok {
		t.Fatalf("tag %q not found", name)
	}
	return id
}

func TestRandomDocumentInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tags := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		d := RandomDocument(rng, n, tags)
		if d.NumNodes() != n {
			t.Fatalf("trial %d: NumNodes = %d, want %d", trial, d.NumNodes(), n)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Containment ⇔ interval containment (checked against parent chain).
		for i := 0; i < d.NumNodes(); i++ {
			id := NodeID(i)
			for p := d.Parent(id); p != InvalidNode; p = d.Parent(p) {
				if !d.IsAncestor(p, id) {
					t.Fatalf("trial %d: ancestor chain broken at %d->%d", trial, p, id)
				}
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := buildSample(t)
	lvl := d.level[3]
	d.level[3] = 99
	if err := d.Validate(); err == nil {
		t.Error("Validate missed corrupted level")
	}
	d.level[3] = lvl

	s := d.start[2]
	d.start[2] = d.start[1]
	if err := d.Validate(); err == nil {
		t.Error("Validate missed non-increasing start")
	}
	d.start[2] = s

	if err := d.Validate(); err != nil {
		t.Fatalf("restored document invalid: %v", err)
	}
}
