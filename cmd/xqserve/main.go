// Command xqserve serves a loaded database over HTTP — the observability
// face of the query service:
//
//	xqserve -dataset pers -addr :8377
//	xqserve -xml file.xml -parallel 4 -slowquery 50ms
//
// Endpoints:
//
//	GET /query?q=//manager//name[&method=FP][&limit=10][&count=1][&trace=1][&novidx=1]
//	    evaluate a tree pattern; JSON response with matches, timings,
//	    the plan, and (with trace=1) the per-operator trace
//	GET /metrics   Prometheus text exposition of the database's counters
//	GET /healthz   liveness probe
//	GET /slow      recent slow-query log entries as JSON
//
// A -slowquery threshold logs offending queries (fingerprint, method,
// duration, per-operator trace) to stderr and retains them for /slow.
//
// The server sheds load and exits gracefully: -maxinflight bounds how many
// queries execute at once (with up to -queuedepth more waiting; arrivals
// past that get 503), and on SIGTERM/SIGINT the server stops accepting,
// drains in-flight queries for up to -draintimeout, then exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"sjos"
)

func main() {
	xmlPath := flag.String("xml", "", "XML file to load")
	dataset := flag.String("dataset", "", "generated data set: mbench, dblp or pers")
	fold := flag.Int("fold", 1, "folding factor for -dataset")
	method := flag.String("method", "DPP", "default optimizer for /query")
	parallel := flag.Int("parallel", 0, "partition-parallel workers (0 = serial, -1 = GOMAXPROCS)")
	addr := flag.String("addr", ":8377", "listen address")
	slowQuery := flag.Duration("slowquery", 0, "slow-query log threshold (0 = disabled)")
	maxInFlight := flag.Int("maxinflight", 0, "max concurrently executing queries (0 = unlimited)")
	queueDepth := flag.Int("queuedepth", 0, "queries allowed to wait for an execution slot when -maxinflight is set")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "how long shutdown waits for in-flight queries")
	flag.Parse()
	if (*xmlPath == "") == (*dataset == "") {
		fmt.Fprintln(os.Stderr, "xqserve: need exactly one of -xml / -dataset")
		os.Exit(2)
	}
	opts := &sjos.Options{MaxInFlight: *maxInFlight, QueueDepth: *queueDepth}
	var db *sjos.Database
	var err error
	if *xmlPath != "" {
		f, ferr := os.Open(*xmlPath)
		if ferr != nil {
			log.Fatalf("xqserve: %v", ferr)
		}
		db, err = sjos.LoadXML(f, opts)
		f.Close()
	} else {
		db, err = sjos.GenerateDataset(*dataset, 1, *fold, opts)
	}
	if err != nil {
		log.Fatalf("xqserve: %v", err)
	}
	if *parallel != 0 {
		db = db.WithParallelism(*parallel)
	}
	m, err := sjos.ParseMethod(*method)
	if err != nil {
		log.Fatalf("xqserve: %v", err)
	}
	if *slowQuery > 0 {
		db.SetSlowQueryLog(*slowQuery, func(e sjos.SlowQueryEntry) {
			log.Printf("slow query: %s (%s, fingerprint %s) took %v (optimize %v, execute %v), %d matches",
				e.Pattern, e.Method, e.Fingerprint, e.Duration, e.OptimizeTime, e.ExecuteTime, e.Matches)
		})
	}
	log.Printf("xqserve: %d element nodes loaded; optimizer %s; listening on %s", db.NumNodes(), m, *addr)
	srv := &http.Server{Addr: *addr, Handler: newMux(db, m)}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("xqserve: %v", err)
	case <-ctx.Done():
	}
	// Graceful exit: stop accepting connections, then wait for every
	// admitted query to finish (new arrivals already get 503 via the
	// database's drain) — both bounded by -draintimeout.
	log.Printf("xqserve: shutting down (draining for up to %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := db.Drain(dctx); err != nil {
		log.Printf("xqserve: drain: %v (queries still running)", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("xqserve: shutdown: %v", err)
	}
	log.Printf("xqserve: bye")
}

// queryResponse is the /query JSON payload.
type queryResponse struct {
	Count int `json:"count"`
	// Matches renders each match as tag=value / tag#id strings, one slot
	// per pattern node (omitted under count=1).
	Matches [][]string `json:"matches,omitempty"`
	Plan    string     `json:"plan"`
	Cached  bool       `json:"cached_plan"`
	// OptimizeNs and ExecuteNs split the latency in nanoseconds.
	OptimizeNs int64         `json:"optimize_ns"`
	ExecuteNs  int64         `json:"execute_ns"`
	Trace      *sjos.OpTrace `json:"trace,omitempty"`
}

// newMux assembles the HTTP handlers for one database; split from main so
// tests can drive it with httptest.
func newMux(db *sjos.Database, defaultMethod sjos.Method) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		db.WriteMetrics(w)
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(db.SlowQueries())
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		src := r.URL.Query().Get("q")
		if src == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		m := defaultMethod
		if ms := r.URL.Query().Get("method"); ms != "" {
			var err error
			if m, err = sjos.ParseMethod(ms); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		opts := sjos.QueryOptions{Method: m}
		if ls := r.URL.Query().Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n < 0 {
				http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
				return
			}
			opts.Limit = n
		}
		opts.Trace = boolParam(r, "trace")
		opts.NoValueIndex = boolParam(r, "novidx")
		res, err := db.QueryContext(r.Context(), src, opts)
		if err != nil {
			// Load shed and shutdown are retryable service conditions, not
			// client errors.
			if errors.Is(err, sjos.ErrOverloaded) || errors.Is(err, sjos.ErrShuttingDown) {
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := &queryResponse{
			Count:      len(res.Matches),
			Plan:       res.PlanText,
			Cached:     res.CachedPlan,
			OptimizeNs: res.OptimizeTime.Nanoseconds(),
			ExecuteNs:  res.ExecuteTime.Nanoseconds(),
			Trace:      res.Trace,
		}
		if !boolParam(r, "count") {
			resp.Matches = renderMatches(db, res.Matches)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	return mux
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true" || v == "yes"
}

// renderMatches formats node bindings the way the CLI tools print them.
func renderMatches(db *sjos.Database, matches []sjos.Match) [][]string {
	out := make([][]string, len(matches))
	for i, m := range matches {
		row := make([]string, len(m))
		for u, id := range m {
			if v := db.Value(id); v != "" {
				row[u] = fmt.Sprintf("%s=%q", db.TagName(id), v)
			} else {
				row[u] = fmt.Sprintf("%s#%d", db.TagName(id), id)
			}
		}
		out[i] = row
	}
	return out
}
