package storage

import (
	"sort"

	"sjos/internal/xmltree"
)

// Range is a half-open interval [Lo, Hi) of document pre-order positions.
// The partition-parallel executor restricts every index scan to candidates
// whose Start position lies inside one such range.
type Range struct {
	Lo, Hi xmltree.Pos
}

// Contains reports whether position p lies inside the range.
func (r Range) Contains(p xmltree.Pos) bool { return r.Lo <= p && p < r.Hi }

// FullRange returns the range covering every position of doc.
func FullRange(doc *xmltree.Document) Range {
	return Range{Lo: 0, Hi: doc.MaxPos() + 1}
}

// PartitionDoc splits doc into at most k disjoint, contiguous position
// ranges that together tile [0, MaxPos+1), suitable for partition-parallel
// evaluation of a tree pattern rooted at rootTag.
//
// Correctness rests on the region encoding: every match of a tree pattern
// is contained in the region of the node bound to the pattern root, so a
// set of ranges whose boundaries never split a rootTag candidate region
// partitions the match set exactly — each match falls entirely inside the
// range holding its root binding, and ranges can be evaluated independently
// and concatenated in order. Cut points are therefore only placed at the
// start of a top-level (maximal, non-nested) rootTag candidate region.
//
// The split is balanced by postings counts: each candidate cut segment is
// weighted by the number of weightTags postings (with multiplicity — a tag
// scanned by two pattern nodes costs twice) whose Start falls inside it,
// which is proportional to the index-scan work a partition performs.
//
// The result always has at least one range; fewer than k ranges are
// returned when the document has fewer top-level candidate regions than k
// (in the degenerate case of a single region — e.g. the pattern root is the
// document root's tag — partition parallelism is impossible and the full
// range is returned alone).
func PartitionDoc(doc *xmltree.Document, rootTag xmltree.TagID, weightTags []xmltree.TagID, k int) []Range {
	full := FullRange(doc)
	if k <= 1 || doc.NumNodes() == 0 {
		return []Range{full}
	}
	cands := doc.NodesWithTag(rootTag)
	if len(cands) == 0 {
		return []Range{full}
	}

	// Top-level candidate regions: candidates not nested inside an earlier
	// candidate. Candidates arrive in document order, so one sweep with the
	// current maximal region end suffices.
	var tops []xmltree.NodeID
	var curEnd xmltree.Pos
	for _, c := range cands {
		if len(tops) == 0 || doc.Start(c) > curEnd {
			tops = append(tops, c)
			curEnd = doc.End(c)
		}
	}
	if len(tops) == 1 {
		return []Range{full}
	}

	// Cut positions: the start of every top-level region after the first.
	// A cut at Start(top_j) splits no candidate region: candidates inside
	// earlier top regions end before it, candidates inside top_j start at
	// or after it.
	cuts := make([]xmltree.Pos, 0, len(tops)+1)
	cuts = append(cuts, 0)
	for j := 1; j < len(tops); j++ {
		cuts = append(cuts, doc.Start(tops[j]))
	}
	cuts = append(cuts, full.Hi)

	// Weight each segment [cuts[j], cuts[j+1]) by the postings whose Start
	// lies inside it. Postings lists are in document order (NodeID order ==
	// Start order), so a binary search per segment boundary splits them.
	m := len(cuts) - 1
	weights := make([]int, m)
	total := 0
	for _, t := range weightTags {
		nodes := doc.NodesWithTag(t)
		for j := 0; j < m; j++ {
			lo := sort.Search(len(nodes), func(i int) bool { return doc.Start(nodes[i]) >= cuts[j] })
			hi := sort.Search(len(nodes), func(i int) bool { return doc.Start(nodes[i]) >= cuts[j+1] })
			weights[j] += hi - lo
			total += hi - lo
		}
	}

	// Greedy proportional packing: close the current range once its
	// cumulative weight reaches the proportional target, as long as enough
	// segments remain to keep every later range non-empty.
	if k > m {
		k = m
	}
	out := make([]Range, 0, k)
	start := 0 // cut index where the current range begins
	cum := 0
	for j := 0; j < m; j++ {
		cum += weights[j]
		if len(out) < k-1 && cum*k >= total*(len(out)+1) && m-1-j >= k-1-len(out) {
			out = append(out, Range{Lo: cuts[start], Hi: cuts[j+1]})
			start = j + 1
		}
	}
	return append(out, Range{Lo: cuts[start], Hi: cuts[m]})
}
