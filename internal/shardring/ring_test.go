package shardring

import (
	"fmt"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a, b := New(5, 0), New(5, 0)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("doc-%04d", i)
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("ring not deterministic for %q: %d vs %d", k, a.Shard(k), b.Shard(k))
		}
	}
}

func TestCoversAllShards(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		r := New(shards, 0)
		seen := make(map[int]bool)
		for i := 0; i < 4096; i++ {
			s := r.Shard(fmt.Sprintf("doc-%d", i))
			if s < 0 || s >= shards {
				t.Fatalf("shard %d out of range [0,%d)", s, shards)
			}
			seen[s] = true
		}
		if len(seen) != shards {
			t.Errorf("%d shards: only %d received keys", shards, len(seen))
		}
	}
}

func TestBalance(t *testing.T) {
	const shards, keys = 8, 64 << 10
	r := New(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Shard(fmt.Sprintf("doc-%06d", i))]++
	}
	mean := float64(keys) / shards
	for s, n := range counts {
		if ratio := float64(n) / mean; ratio < 0.5 || ratio > 1.7 {
			t.Errorf("shard %d holds %d keys (%.2fx the mean) — ring badly unbalanced", s, n, ratio)
		}
	}
}

// TestResharding: growing the ring by one shard must move only a small
// fraction of keys — the property that distinguishes consistent hashing
// from mod-N assignment (which moves almost everything).
func TestResharding(t *testing.T) {
	const keys = 16 << 10
	small, large := New(8, 0), New(9, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("doc-%06d", i)
		if small.Shard(k) != large.Shard(k) {
			moved++
		}
	}
	// Ideal is 1/9 ≈ 11%; allow generous slack for virtual-point variance
	// but stay far below mod-N's ~89%.
	if frac := float64(moved) / keys; frac > 0.30 {
		t.Errorf("resharding 8→9 moved %.1f%% of keys, want ≲ 30%%", frac*100)
	}
}

func TestShardClamping(t *testing.T) {
	if got := New(0, 0).Shards(); got != 1 {
		t.Errorf("New(0) shards = %d, want 1", got)
	}
	if New(1, 0).Shard("anything") != 0 {
		t.Error("single-shard ring must assign everything to shard 0")
	}
}
