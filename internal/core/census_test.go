package core

import (
	"testing"

	"sjos/internal/pattern"
)

func TestCensusTinyPatternByHand(t *testing.T) {
	// //a//b: statuses are the start plus one final (ordering collapsed
	// on the last move).
	c, err := CensusSearchSpace(pattern.MustParse("//a//b"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Statuses != 2 || c.Finals != 1 || c.Deadends != 0 {
		t.Fatalf("census = %+v", c)
	}
	if c.PerLevel[0] != 1 || c.PerLevel[1] != 1 {
		t.Fatalf("per level = %v", c.PerLevel)
	}
}

func TestCensusPathThree(t *testing.T) {
	// //a//b//c: from the start, joining (a,b) can leave the pair ordered
	// by a (deadend), b (alive), or c... the census counts them all.
	c, err := CensusSearchSpace(pattern.MustParse("//a//b//c"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Deadends == 0 {
		t.Fatal("3-node path must have deadend statuses (Definition 6)")
	}
	// Like the paper's Figure 3 (S30..S33), several final statuses exist,
	// one per achievable output ordering of the last move.
	if c.Finals < 1 {
		t.Fatalf("finals = %d", c.Finals)
	}
	// Level 1 statuses: per edge, merged pair ordered by any of its 2
	// nodes = 2 orderings × 2 edges = 4.
	if c.PerLevel[1] != 4 {
		t.Fatalf("level-1 statuses = %d, want 4", c.PerLevel[1])
	}
}

func TestCensusGrowthIsExponential(t *testing.T) {
	prev := 0
	for n := 2; n <= 7; n++ {
		c, err := CensusSearchSpace(chainPattern(n))
		if err != nil {
			t.Fatal(err)
		}
		if c.Statuses <= prev {
			t.Fatalf("n=%d: statuses %d did not grow (prev %d)", n, c.Statuses, prev)
		}
		if n >= 4 && c.Statuses < prev*2 {
			t.Errorf("n=%d: growth %d -> %d slower than exponential doubling", n, prev, c.Statuses)
		}
		prev = c.Statuses
	}
}

func TestCensusDeadendShareGrows(t *testing.T) {
	small, err := CensusSearchSpace(chainPattern(3))
	if err != nil {
		t.Fatal(err)
	}
	large, err := CensusSearchSpace(chainPattern(7))
	if err != nil {
		t.Fatal(err)
	}
	fs := float64(small.Deadends) / float64(small.Statuses)
	fl := float64(large.Deadends) / float64(large.Statuses)
	if fl <= fs {
		t.Errorf("deadend share should grow with pattern size: %.3f -> %.3f", fs, fl)
	}
}

func TestCensusLimits(t *testing.T) {
	if _, err := CensusSearchSpace(chainPattern(20)); err == nil {
		t.Fatal("oversized census accepted")
	}
	if _, err := CensusSearchSpace(&pattern.Pattern{}); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}
