// Package datagen generates the synthetic data sets the experiments run on.
//
// The paper evaluates on three data sets: Mbench (the Michigan benchmark),
// DBLP, and Pers (AT&T's synthetic personnel data, the running example).
// None of the original files is available offline, so this package builds
// deterministic synthetic equivalents that reproduce the structural
// characteristics the experiments depend on:
//
//   - Mbench-like: a deep, recursively nested eNest hierarchy with skewed
//     fanout and per-level attributes — ancestor-descendant joins across
//     many levels, large candidate sets;
//   - DBLP-like: shallow and wide bibliographic records (article/inproceedings
//     with author/title/year children) — highly selective parent-child
//     joins, little recursion;
//   - Pers-like: a recursive manager/employee/department organisation tree —
//     the Figure 1/Example 2.2 workload, with manager-under-manager
//     recursion so both `//` and `/` edges are meaningful.
//
// Every generator is deterministic for a given configuration (fixed PRNG
// seeds), and all emitted documents pass xmltree's structural validation.
// Folding (§4.3's data scaling) is provided by xmltree.Fold.
package datagen

import (
	"fmt"
	"math/rand"

	"sjos/internal/xmltree"
)

// Dataset names understood by Generate.
const (
	NameMbench = "mbench"
	NameDBLP   = "dblp"
	NamePers   = "pers"
)

// Config selects and sizes a data set.
type Config struct {
	// Name is one of NameMbench, NameDBLP, NamePers.
	Name string
	// Scale multiplies the base size (1 = the defaults documented on
	// each generator; 0 is treated as 1).
	Scale float64
	// Seed selects the deterministic PRNG stream (0 is a valid seed).
	Seed int64
}

// Generate builds the configured data set.
func Generate(cfg Config) (*xmltree.Document, error) {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	switch cfg.Name {
	case NameMbench:
		return Mbench(scale, cfg.Seed), nil
	case NameDBLP:
		return DBLP(scale, cfg.Seed), nil
	case NamePers:
		return Pers(scale, cfg.Seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown data set %q", cfg.Name)
	}
}

// Mbench generates the Michigan-benchmark-like document: a recursive eNest
// tree 8 levels deep (at scale 1, ≈ 74k nodes — one tenth of the paper's
// 740k, keeping default test runs quick; use Scale 10 for full size). Each
// eNest carries aLevel/aSixtyFour attributes as pseudo-element children,
// and every eNest node owns an eOccasional child with probability 1/6,
// mirroring mbench's skewed secondary elements.
func Mbench(scale float64, seed int64) *xmltree.Document {
	rng := rand.New(rand.NewSource(seed ^ 0x6d62656e)) // "mben"
	b := xmltree.NewBuilder()
	b.Open("mbench", "")
	// Level fanouts: the Michigan benchmark nests eNest with high fanout
	// near the root and deep recursion below. Budget nodes ≈ 74k·scale.
	budget := int(74000 * scale)
	var gen func(level int, fanout int)
	count := 0
	gen = func(level, fanout int) {
		if count >= budget || level > 8 {
			return
		}
		for i := 0; i < fanout && count < budget; i++ {
			count++
			b.Open("eNest", fmt.Sprintf("%d", count))
			b.Leaf("aLevel", fmt.Sprintf("%d", level))
			b.Leaf("aSixtyFour", fmt.Sprintf("%d", count%64))
			count += 2
			if rng.Intn(6) == 0 {
				b.Leaf("eOccasional", fmt.Sprintf("%d", rng.Intn(budget+1)))
				count++
			}
			next := 2
			if level < 3 {
				next = 4 + rng.Intn(5)
			} else if level < 6 {
				next = 2 + rng.Intn(3)
			}
			gen(level+1, next)
			b.Close()
		}
	}
	gen(1, 16)
	b.Close()
	return b.MustFinish()
}

// DBLP generates the bibliographic document: a flat sequence of article /
// inproceedings / book records with author, title, year, and optional ee /
// cite children (at scale 1, ≈ 50k nodes — a tenth of the paper's 500k).
func DBLP(scale float64, seed int64) *xmltree.Document {
	rng := rand.New(rand.NewSource(seed ^ 0x64626c70)) // "dblp"
	b := xmltree.NewBuilder()
	b.Open("dblp", "")
	budget := int(50000 * scale)
	kinds := []string{"article", "inproceedings", "article", "inproceedings", "book"}
	count := 0
	for count < budget {
		kind := kinds[rng.Intn(len(kinds))]
		b.Open(kind, "")
		count++
		nAuthors := 1 + rng.Intn(3)
		for a := 0; a < nAuthors; a++ {
			b.Leaf("author", fmt.Sprintf("author-%d", rng.Intn(5000)))
			count++
		}
		b.Leaf("title", fmt.Sprintf("title-%d", count))
		b.Leaf("year", fmt.Sprintf("%d", 1970+rng.Intn(33)))
		count += 2
		if rng.Intn(3) == 0 {
			b.Leaf("ee", fmt.Sprintf("http://example.org/%d", count))
			count++
		}
		if kind == "inproceedings" {
			b.Leaf("booktitle", fmt.Sprintf("conf-%d", rng.Intn(300)))
			count++
		}
		for rng.Intn(4) == 0 {
			b.Open("cite", "")
			b.Leaf("label", fmt.Sprintf("ref-%d", rng.Intn(budget+1)))
			b.Close()
			count += 2
		}
		b.Close()
	}
	b.Close()
	return b.MustFinish()
}

// Pers generates the personnel document of the paper's running example: a
// recursive organisation where managers supervise employees, departments
// and other managers, each with a name child (at scale 1, ≈ 5k nodes,
// matching the paper's Pers size). Recursion depth follows a geometric
// distribution so manager//manager and manager//employee pairs exist at
// many distances.
func Pers(scale float64, seed int64) *xmltree.Document {
	rng := rand.New(rand.NewSource(seed ^ 0x70657273)) // "pers"
	b := xmltree.NewBuilder()
	b.Open("personnel", "")
	budget := int(5000 * scale)
	count := 0
	var manager func(depth int)
	manager = func(depth int) {
		if count >= budget {
			return
		}
		b.Open("manager", "")
		b.Leaf("name", fmt.Sprintf("mgr-%d", count))
		count += 2
		// Direct reports: employees.
		nEmp := 1 + rng.Intn(4)
		for i := 0; i < nEmp && count < budget; i++ {
			b.Open("employee", "")
			b.Leaf("name", fmt.Sprintf("emp-%d", count))
			if rng.Intn(3) == 0 {
				b.Leaf("salary", fmt.Sprintf("%d", 30000+rng.Intn(90000)))
				count++
			}
			b.Close()
			count += 2
		}
		// Departments directly supervised.
		if rng.Intn(2) == 0 && count < budget {
			b.Open("department", "")
			b.Leaf("name", fmt.Sprintf("dept-%d", count))
			b.Close()
			count += 2
		}
		// Subordinate managers (recursive, geometric tail).
		for count < budget && depth < 12 && rng.Intn(3) != 0 {
			manager(depth + 1)
			if rng.Intn(2) == 0 {
				break
			}
		}
		b.Close()
	}
	for count < budget {
		manager(1)
	}
	b.Close()
	return b.MustFinish()
}
