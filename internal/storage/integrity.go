package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Every page carries an integrity header so torn writes, bit rot and
// misdirected reads are detected at the buffer pool boundary instead of
// silently corrupting query results:
//
//	bytes [0:4)  CRC32-C (Castagnoli) of bytes [4:PageSize)
//	bytes [4:8)  the page's own ID (little endian) — a misdirected read
//	             (right bytes, wrong page) fails this check even when the
//	             checksum of the stolen page is internally consistent
//
// Payload starts at PageHeaderSize. Writers seal pages with SealPage before
// handing them to a PageFile; the buffer pool verifies every physical read
// with VerifyPage and retries transient mismatches under its RetryPolicy.

// PageHeaderSize is the number of bytes reserved for the integrity header
// at the start of every page; record payload begins at this offset.
const PageHeaderSize = 8

// PayloadSize is the per-page byte capacity left for records.
const PayloadSize = PageSize - PageHeaderSize

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), shared by all seal/verify calls.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SealPage stamps p's integrity header: the page's ID and the CRC32-C of
// everything after the checksum field. Callers must seal after the last
// payload mutation and before handing the page to a PageFile.
func SealPage(id PageID, p *Page) {
	binary.LittleEndian.PutUint32(p[4:8], uint32(id))
	binary.LittleEndian.PutUint32(p[0:4], crc32.Checksum(p[4:], castagnoli))
}

// VerifyPage checks p's integrity header against the expected page ID. A
// failure is reported as a *CorruptPageError whose Tag names the check that
// failed ("page-id" for a misdirected read, "checksum" for content damage).
func VerifyPage(id PageID, p *Page) error {
	if got := PageID(binary.LittleEndian.Uint32(p[4:8])); got != id {
		return &CorruptPageError{Page: id, Tag: "page-id", Got: uint32(got)}
	}
	want := binary.LittleEndian.Uint32(p[0:4])
	if got := crc32.Checksum(p[4:], castagnoli); got != want {
		return &CorruptPageError{Page: id, Tag: "checksum", Got: got, Want: want}
	}
	return nil
}

// CorruptPageError reports a page that failed integrity verification after
// every permitted read attempt. It propagates losslessly (errors.As) through
// the batch and tuple executors up to the query API, so callers can
// distinguish data corruption from transient I/O trouble.
type CorruptPageError struct {
	// Page is the page that failed verification.
	Page PageID
	// Tag names the failed check: "checksum" (content damage) or
	// "page-id" (misdirected read).
	Tag string
	// Got and Want are the mismatching values of the failed check (for
	// "page-id", Got is the ID found in the header and Want is unused).
	Got, Want uint32
	// Attempts is how many reads were tried before giving up (0 when the
	// error did not pass through the buffer pool's retry loop).
	Attempts int
}

// Error implements error.
func (e *CorruptPageError) Error() string {
	msg := fmt.Sprintf("storage: page %d corrupt (%s: got %#x, want %#x)", e.Page, e.Tag, e.Got, e.Want)
	if e.Tag == "page-id" {
		msg = fmt.Sprintf("storage: page %d corrupt (%s: header claims page %d)", e.Page, e.Tag, e.Got)
	}
	if e.Attempts > 1 {
		msg += fmt.Sprintf(" after %d attempts", e.Attempts)
	}
	return msg
}

// TransientError marks an error as retryable: the same operation may
// succeed if repeated (flaky I/O, injected chaos faults). The buffer pool
// retries transient read failures under its RetryPolicy; everything else
// fails fast.
type TransientError struct{ Err error }

// Error implements error.
func (e *TransientError) Error() string { return "storage: transient: " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// MarkTransient wraps err as retryable. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is marked retryable anywhere in its chain.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// IsCorrupt reports whether err carries a *CorruptPageError.
func IsCorrupt(err error) bool {
	var ce *CorruptPageError
	return errors.As(err, &ce)
}
