package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// DefaultPoolFrames is the default buffer pool capacity: 2048 frames of 8 KB
// = 16 MB, matching the SHORE buffer pool size used in the paper's
// experiments.
const DefaultPoolFrames = 2048

// BufferPool caches pages of a PageFile in a fixed number of frames with an
// LRU replacement policy and pin counting. It is safe for concurrent use.
type BufferPool struct {
	file   PageFile
	frames int

	mu      sync.Mutex
	table   map[PageID]*frame
	lru     *list.List // unpinned frames, front = least recently used
	free    []*frame   // allocated frames whose page read failed, for reuse
	hits    uint64
	misses  uint64
	evicted uint64
}

type frame struct {
	id    PageID
	page  Page
	pins  int
	dirty bool
	elem  *list.Element // position in lru when pins == 0, else nil
}

// PoolStats is a snapshot of buffer pool counters.
type PoolStats struct {
	Hits, Misses, Evicted uint64
	Resident              int
}

// ErrPoolFull is returned when every frame is pinned and a new page is
// requested.
var ErrPoolFull = errors.New("storage: buffer pool full (all frames pinned)")

// NewBufferPool creates a pool over file with the given number of frames
// (DefaultPoolFrames if frames <= 0).
func NewBufferPool(file PageFile, frames int) *BufferPool {
	if frames <= 0 {
		frames = DefaultPoolFrames
	}
	return &BufferPool{
		file:   file,
		frames: frames,
		table:  make(map[PageID]*frame, frames),
		lru:    list.New(),
	}
}

// Get pins page id and returns a pointer to its in-pool copy. The caller
// must Unpin it when done and must not retain the pointer afterwards.
func (bp *BufferPool) Get(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.table[id]; ok {
		bp.hits++
		bp.pinLocked(fr)
		return &fr.page, nil
	}
	bp.misses++
	fr, evicted, err := bp.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	if err := bp.file.ReadPage(id, &fr.page); err != nil {
		// The caller gets an error, so the page never becomes resident:
		// return the frame to the free list for the next Get to reuse
		// (no second victim is evicted for it) and leave the eviction
		// counter untouched — PoolStats only counts replacements that
		// actually brought a page in.
		bp.freeFrameLocked(fr)
		return nil, err
	}
	if evicted {
		bp.evicted++
	}
	fr.id = id
	fr.pins = 1
	fr.dirty = false
	bp.table[id] = fr
	return &fr.page, nil
}

// Unpin releases one pin on page id; dirty marks the page as modified so it
// is written back on eviction or Flush.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.table[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("storage: Unpin of unpinned page %d", id))
	}
	fr.dirty = fr.dirty || dirty
	fr.pins--
	if fr.pins == 0 {
		fr.elem = bp.lru.PushBack(fr)
	}
}

// Flush writes back all dirty pages. Pinned pages are flushed too (their
// contents at the time of the call).
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.table {
		if fr.dirty {
			if err := bp.file.WritePage(fr.id, &fr.page); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// Stats returns a snapshot of the pool's counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return PoolStats{Hits: bp.hits, Misses: bp.misses, Evicted: bp.evicted, Resident: len(bp.table)}
}

// ResetStats zeroes the hit/miss/eviction counters (resident pages stay).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.hits, bp.misses, bp.evicted = 0, 0, 0
}

// Frames returns the pool capacity in frames.
func (bp *BufferPool) Frames() int { return bp.frames }

func (bp *BufferPool) pinLocked(fr *frame) {
	if fr.pins == 0 && fr.elem != nil {
		bp.lru.Remove(fr.elem)
		fr.elem = nil
	}
	fr.pins++
}

// allocFrameLocked returns a free frame, evicting the LRU unpinned page if
// the pool is at capacity. evicted reports whether a resident page was
// displaced; the caller counts it only once the replacement page is
// actually read in.
func (bp *BufferPool) allocFrameLocked() (fr *frame, evicted bool, err error) {
	if n := len(bp.free); n > 0 {
		fr = bp.free[n-1]
		bp.free = bp.free[:n-1]
		return fr, false, nil
	}
	if len(bp.table) < bp.frames {
		return &frame{}, false, nil
	}
	front := bp.lru.Front()
	if front == nil {
		return nil, false, ErrPoolFull
	}
	fr = front.Value.(*frame)
	if fr.dirty {
		if err := bp.file.WritePage(fr.id, &fr.page); err != nil {
			// Write-back failed: the victim stays resident and evictable
			// (it keeps its LRU slot) instead of leaking off both lists.
			return nil, false, err
		}
		fr.dirty = false
	}
	bp.lru.Remove(front)
	fr.elem = nil
	delete(bp.table, fr.id)
	return fr, true, nil
}

// freeFrameLocked returns a frame allocated by allocFrameLocked that was
// never published in the table; the next allocation reuses it before
// evicting anyone else.
func (bp *BufferPool) freeFrameLocked(fr *frame) {
	*fr = frame{}
	bp.free = append(bp.free, fr)
}
