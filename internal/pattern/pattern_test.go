package pattern

import (
	"math/rand"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("manager")
	emp := b.Desc(b.Root(), "employee")
	b.Kid(emp, "name")
	dep := b.Desc(b.Root(), "department")
	b.Where(dep, CmpEq, "tools")
	b.OrderBy(emp)
	p := b.Pattern()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.N() != 4 || p.NumEdges() != 3 {
		t.Fatalf("N=%d edges=%d", p.N(), p.NumEdges())
	}
	if p.OrderBy != int(emp) {
		t.Fatalf("OrderBy = %d", p.OrderBy)
	}
	if p.Axis[1] != Descendant || p.Axis[2] != Child {
		t.Fatalf("axes: %v", p.Axis)
	}
	if got := p.Children(0); len(got) != 2 {
		t.Fatalf("root children = %v", got)
	}
	if got := p.Neighbors(int(emp)); len(got) != 2 {
		t.Fatalf("emp neighbors = %v", got)
	}
	if e, ok := p.EdgeBetween(0, int(emp)); !ok || e != int(emp) {
		t.Fatalf("EdgeBetween(0,emp) = %d,%v", e, ok)
	}
	if _, ok := p.EdgeBetween(int(emp), int(dep)); ok {
		t.Fatal("emp-dep edge should not exist")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []Pattern{
		{}, // empty
		{Nodes: []Node{{Tag: "a"}}, Parent: []int{0}, Axis: []Axis{Child}, OrderBy: NoNode},                             // root with parent
		{Nodes: []Node{{Tag: "a"}, {Tag: "b"}}, Parent: []int{NoNode, 1}, Axis: []Axis{Child, Child}, OrderBy: NoNode},  // self/forward parent
		{Nodes: []Node{{Tag: "a"}, {Tag: ""}}, Parent: []int{NoNode, 0}, Axis: []Axis{Child, Child}, OrderBy: NoNode},   // empty tag
		{Nodes: []Node{{Tag: "a"}}, Parent: []int{NoNode}, Axis: []Axis{Child}, OrderBy: 5},                             // orderby range
		{Nodes: []Node{{Tag: "a"}, {Tag: "b"}}, Parent: []int{NoNode}, Axis: []Axis{Child, Child}, OrderBy: NoNode},     // len mismatch
		{Nodes: []Node{{Tag: "a"}, {Tag: "b"}}, Parent: []int{NoNode, -2}, Axis: []Axis{Child, Child}, OrderBy: NoNode}, // bad parent
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted malformed pattern", i)
		}
	}
}

func TestParseSimplePath(t *testing.T) {
	p, err := Parse("/db/item/price")
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 3 {
		t.Fatalf("N = %d", p.N())
	}
	for i, want := range []string{"db", "item", "price"} {
		if p.Nodes[i].Tag != want {
			t.Errorf("node %d tag = %q, want %q", i, p.Nodes[i].Tag, want)
		}
	}
	if p.Axis[1] != Child || p.Axis[2] != Child {
		t.Errorf("axes = %v", p.Axis)
	}
	if p.OrderBy != NoNode {
		t.Errorf("OrderBy = %d", p.OrderBy)
	}
}

func TestParseDescendantAndBranches(t *testing.T) {
	p, err := Parse("//manager[.//employee/name]//department/name")
	if err != nil {
		t.Fatal(err)
	}
	// manager, employee, name, department, name
	if p.N() != 5 {
		t.Fatalf("N = %d: %+v", p.N(), p.Nodes)
	}
	tags := []string{"manager", "employee", "name", "department", "name"}
	for i, want := range tags {
		if p.Nodes[i].Tag != want {
			t.Fatalf("node %d = %q, want %q", i, p.Nodes[i].Tag, want)
		}
	}
	wantParent := []int{NoNode, 0, 1, 0, 3}
	wantAxis := []Axis{Child, Descendant, Child, Descendant, Child}
	for i := range tags {
		if p.Parent[i] != wantParent[i] {
			t.Errorf("parent[%d] = %d, want %d", i, p.Parent[i], wantParent[i])
		}
		if p.Axis[i] != wantAxis[i] {
			t.Errorf("axis[%d] = %v, want %v", i, p.Axis[i], wantAxis[i])
		}
	}
}

func TestParsePredicates(t *testing.T) {
	p, err := Parse(`/db/item[@id = "42"][. ~ "rare"]/price[. > 10]`)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 4 {
		t.Fatalf("N = %d", p.N())
	}
	var attr *Node
	for i := range p.Nodes {
		if p.Nodes[i].Tag == "@id" {
			attr = &p.Nodes[i]
		}
	}
	if attr == nil {
		t.Fatal("@id node missing")
	}
	if attr.Op != CmpEq || attr.Value != "42" {
		t.Errorf("@id predicate = %v %q", attr.Op, attr.Value)
	}
	item := &p.Nodes[1]
	if item.Op != CmpContains || item.Value != "rare" {
		t.Errorf("item predicate = %v %q", item.Op, item.Value)
	}
	price := &p.Nodes[len(p.Nodes)-1]
	if price.Tag != "price" || price.Op != CmpGt || price.Value != "10" {
		t.Errorf("price predicate = %+v", price)
	}
}

func TestParseOrderByMarker(t *testing.T) {
	p, err := Parse("//manager#[employee][department]")
	if err != nil {
		t.Fatal(err)
	}
	if p.OrderBy != 0 {
		t.Fatalf("OrderBy = %d", p.OrderBy)
	}
	if p.N() != 3 {
		t.Fatalf("N = %d", p.N())
	}
	if _, err := Parse("//a#/b#"); err == nil {
		t.Fatal("duplicate # should fail")
	}
}

func TestParseAttributeExistence(t *testing.T) {
	p, err := Parse("//item[@id]")
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 2 || p.Nodes[1].Tag != "@id" || p.Nodes[1].Op != CmpNone {
		t.Fatalf("pattern = %+v", p.Nodes)
	}
}

func TestParseBareLiteral(t *testing.T) {
	p, err := Parse("//price[. >= 99]")
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes[0].Op != CmpGe || p.Nodes[0].Value != "99" {
		t.Fatalf("predicate = %v %q", p.Nodes[0].Op, p.Nodes[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"//",
		"//a[",
		"//a[]",
		"//a[. =]",
		`//a[. = "unterminated]`,
		"//a]b",
		"//a[. = 1][. = 2]", // duplicate value predicate
		"//a bogus",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"//manager[.//employee/name]//department/name",
		`/db/item[@id = "42"]/price`,
		"//manager#[employee][department]",
		"//a[b][c]//d",
		`//price[. >= "99"]`,
	} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("reparse of %q (canon of %q): %v", canon, s, err)
		}
		if got := p2.String(); got != canon {
			t.Errorf("canonical form not stable: %q -> %q -> %q", s, canon, got)
		}
	}
}

// randomPattern builds a random valid pattern with n nodes.
func randomPattern(rng *rand.Rand, n int) *Pattern {
	tags := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	b := NewBuilder(tags[rng.Intn(len(tags))])
	handles := []BuilderNode{b.Root()}
	for i := 1; i < n; i++ {
		parent := handles[rng.Intn(len(handles))]
		tag := tags[rng.Intn(len(tags))]
		var h BuilderNode
		if rng.Intn(2) == 0 {
			h = b.Kid(parent, tag)
		} else {
			h = b.Desc(parent, tag)
		}
		handles = append(handles, h)
	}
	if rng.Intn(2) == 0 {
		b.OrderBy(handles[rng.Intn(len(handles))])
	}
	return b.Pattern()
}

func TestRandomPatternsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		p := randomPattern(rng, 1+rng.Intn(10))
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("trial %d: reparse %q: %v", trial, canon, err)
		}
		if p2.N() != p.N() {
			t.Fatalf("trial %d: %q reparsed to %d nodes, want %d", trial, canon, p2.N(), p.N())
		}
		if got := p2.String(); got != canon {
			t.Fatalf("trial %d: unstable canon %q -> %q", trial, canon, got)
		}
	}
}
