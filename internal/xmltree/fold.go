package xmltree

// Fold replicates a document by the given folding factor, reproducing the
// data-scaling methodology of the paper's §4.3: the result has a fresh
// synthetic root whose children are `factor` disjoint copies of the original
// root's subtree. Because the copies occupy disjoint position ranges, no
// structural join pairs nodes from different copies, so every pattern-match
// count scales by exactly `factor` — the same linear scaling the paper
// relies on.
//
// The synthetic root's tag is the original root tag prefixed with "fold-",
// chosen so it never collides with a query tag.
func Fold(d *Document, factor int) *Document {
	if factor <= 1 {
		return d
	}
	b := NewBuilder()
	b.Open("fold-"+d.TagName(d.Tag(d.Root())), "")
	// Pre-intern tags so copies share TagIDs with the first pass.
	ids := make([]TagID, d.NumTags())
	for t := 0; t < d.NumTags(); t++ {
		ids[t] = b.Tag(d.TagName(TagID(t)))
	}
	n := d.NumNodes()
	for copyNo := 0; copyNo < factor; copyNo++ {
		// Replay the original pre-order walk, closing elements whose
		// region has ended before the next node starts.
		open := make([]NodeID, 0, 64) // original IDs of currently open nodes
		for i := 0; i < n; i++ {
			id := NodeID(i)
			for len(open) > 0 && d.End(open[len(open)-1]) < d.Start(id) {
				b.Close()
				open = open[:len(open)-1]
			}
			b.OpenTag(ids[d.Tag(id)], d.Value(id))
			open = append(open, id)
		}
		for range open {
			b.Close()
		}
	}
	b.Close()
	return b.MustFinish()
}
