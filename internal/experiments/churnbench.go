package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"sjos"
	"sjos/internal/datagen"
	"sjos/internal/loadgen"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// ChurnBenchConfig shapes the mixed read/write benchmark: an open-loop
// query stream and an open-loop mutation stream (insert / replace / delete
// of whole documents) run concurrently against one writable corpus.
type ChurnBenchConfig struct {
	// Docs and Shards size the initial corpus (pers documents with
	// distinct generator seeds). <= 0 selects 8 documents over 4 shards.
	Docs   int
	Shards int
	// QueryRate and MutateRate are the offered arrival rates per second
	// (<= 0 selects 150 queries/s and 30 mutations/s).
	QueryRate  float64
	MutateRate float64
	// Duration is the load phase length (<= 0 selects 3 s).
	Duration time.Duration
	// Clients is the query worker pool (<= 0 selects 2 × Shards).
	Clients int
	// Method is the optimizer every query runs with.
	Method sjos.Method
	// Seed offsets the generator seeds and seeds both arrival processes.
	Seed int64
	// Scale is the pers generator scale for both the initial corpus and
	// the churned documents (<= 0 selects 1, or 0.25 under Quick).
	Scale float64
	// Quick shrinks everything for a CI smoke run.
	Quick bool
}

func (c *ChurnBenchConfig) defaults() {
	if c.Quick {
		if c.Docs <= 0 {
			c.Docs = 4
		}
		if c.Shards <= 0 {
			c.Shards = 2
		}
		if c.QueryRate <= 0 {
			c.QueryRate = 20
		}
		if c.MutateRate <= 0 {
			c.MutateRate = 10
		}
		if c.Duration <= 0 {
			c.Duration = time.Second
		}
		if c.Scale <= 0 {
			c.Scale = 0.25
		}
	}
	if c.Docs <= 0 {
		c.Docs = 8
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueryRate <= 0 {
		c.QueryRate = 150
	}
	if c.MutateRate <= 0 {
		c.MutateRate = 30
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Clients <= 0 {
		c.Clients = 2 * c.Shards
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
}

// ChurnBenchResult is one churn run's record, JSON-shaped for
// BENCH_churn.json.
type ChurnBenchResult struct {
	// Corpus geometry and workload identity.
	Docs       int     `json:"initial_docs"`
	Shards     int     `json:"shards"`
	Method     string  `json:"method"`
	QueryRate  float64 `json:"query_rate_per_sec"`
	MutateRate float64 `json:"mutate_rate_per_sec"`
	Duration   string  `json:"duration"`
	Clients    int     `json:"clients"`

	// Query-side accounting under churn (arrival-to-completion latency).
	Queries      int     `json:"queries_completed"`
	QueryErrors  int     `json:"query_errors"`
	QueryRateOut float64 `json:"query_throughput_per_sec"`
	QueryP50     string  `json:"query_p50"`
	QueryP95     string  `json:"query_p95"`
	QueryP99     string  `json:"query_p99"`

	// Mutation-side accounting: every mutation is a full WAL-committed
	// document insert, replace, or delete.
	Inserts        int     `json:"inserts"`
	Replaces       int     `json:"replaces"`
	Deletes        int     `json:"deletes"`
	MutationErrors int     `json:"mutation_errors"`
	MutateRateOut  float64 `json:"mutate_throughput_per_sec"`
	MutateP50      string  `json:"mutate_p50"`
	MutateP95      string  `json:"mutate_p95"`
	MutateMax      string  `json:"mutate_max"`

	// End-state verification: the surviving document set must match the
	// mutation ledger exactly, no shard may be poisoned or down, and the
	// incrementally maintained statistics must plan identically to a full
	// rebuild.
	FinalDocs       int  `json:"final_docs"`
	LedgerDocs      int  `json:"ledger_docs"`
	WALPages        int  `json:"wal_pages"`
	Compactions     int  `json:"compactions"`
	BrokenShards    int  `json:"broken_shards"`
	DownReplicas    int  `json:"down_replicas"`
	StatsConsistent bool `json:"stats_consistent"`
	DrainClean      bool `json:"drain_clean"`
}

// Verify reports whether the run ended in a consistent state.
func (r *ChurnBenchResult) Verify() error {
	switch {
	case r.QueryErrors > 0:
		return fmt.Errorf("%d queries failed under churn", r.QueryErrors)
	case r.MutationErrors > 0:
		return fmt.Errorf("%d mutations failed", r.MutationErrors)
	case r.FinalDocs != r.LedgerDocs:
		return fmt.Errorf("corpus holds %d docs, mutation ledger says %d", r.FinalDocs, r.LedgerDocs)
	case r.BrokenShards > 0 || r.DownReplicas > 0:
		return fmt.Errorf("%d broken shards, %d down replicas", r.BrokenShards, r.DownReplicas)
	case !r.StatsConsistent:
		return fmt.Errorf("incremental statistics diverged from a full rebuild")
	case !r.DrainClean:
		return fmt.Errorf("corpus did not drain cleanly after the load phase")
	}
	return nil
}

// churnLedger tracks which churn-inserted documents are live, so the
// mutation stream never targets an ID it already removed.
type churnLedger struct {
	mu   sync.Mutex
	live []string
	next int
	rng  *rand.Rand

	inserts, replaces, deletes int
}

// ChurnBench builds a writable sharded corpus (in-memory per-shard WALs),
// then runs a Poisson query stream and a Poisson mutation stream against it
// concurrently. Each mutation commits a whole pers document through the
// owning shard's WAL; queries must stay correct and fast throughout. The
// run fails if any query or mutation errors, if the final document set
// disagrees with the mutation ledger, or if the incrementally maintained
// statistics disagree with a full rebuild.
func ChurnBench(cfg ChurnBenchConfig) (*ChurnBenchResult, error) {
	cfg.defaults()
	b := sjos.NewCorpusBuilder(&sjos.CorpusOptions{
		Shards:       cfg.Shards,
		ShardWALFile: func(int) sjos.PageFile { return storage.NewMemFile() },
	})
	for i := 0; i < cfg.Docs; i++ {
		id := fmt.Sprintf("pers-%03d", i)
		if err := b.AddDataset(id, "pers", cfg.Scale, 1, cfg.Seed+int64(i)); err != nil {
			return nil, err
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Pre-serialize a pool of spare pers documents for the insert/replace
	// mix, so generation cost never pollutes mutation latency.
	spares := make([]string, 8)
	for i := range spares {
		doc, err := datagen.Generate(datagen.Config{Name: "pers", Scale: cfg.Scale, Seed: cfg.Seed + 1000 + int64(i)})
		if err != nil {
			return nil, err
		}
		if spares[i], err = xmltree.SerializeString(doc); err != nil {
			return nil, err
		}
	}

	var mix []string
	for _, q := range Queries() {
		if q.Dataset == "pers" {
			mix = append(mix, q.Source)
		}
	}
	res := &ChurnBenchResult{
		Docs:       cfg.Docs,
		Shards:     c.NumShards(),
		Method:     cfg.Method.String(),
		QueryRate:  cfg.QueryRate,
		MutateRate: cfg.MutateRate,
		Duration:   cfg.Duration.String(),
		Clients:    cfg.Clients,
	}

	led := &churnLedger{rng: rand.New(rand.NewSource(cfg.Seed))}
	// mutateOnce performs one ledger-consistent mutation. The ledger lock
	// spans the corpus call: mutations serialize on the corpus's own
	// ingest lock anyway, and this keeps ledger and corpus in lock-step.
	mutateOnce := func() error {
		led.mu.Lock()
		defer led.mu.Unlock()
		op := led.rng.Intn(3)
		switch {
		case op == 1 && len(led.live) > 0: // replace a live churn doc
			id := led.live[led.rng.Intn(len(led.live))]
			if err := c.ReplaceString(id, spares[led.rng.Intn(len(spares))]); err != nil {
				return err
			}
			led.replaces++
		case op == 2 && len(led.live) > 1: // delete one, keep some alive
			i := led.rng.Intn(len(led.live))
			id := led.live[i]
			if err := c.Delete(id); err != nil {
				return err
			}
			led.live = append(led.live[:i], led.live[i+1:]...)
			led.deletes++
		default: // insert a fresh churn doc
			id := fmt.Sprintf("churn-%04d", led.next)
			led.next++
			if err := c.InsertString(id, spares[led.rng.Intn(len(spares))]); err != nil {
				return err
			}
			led.live = append(led.live, id)
			led.inserts++
		}
		return nil
	}

	var queryNext, mutErrs int
	var queryMu sync.Mutex
	var qres, mres loadgen.Result
	var qerr, merr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		qres, qerr = loadgen.Run(loadgen.Config{
			Rate:     cfg.QueryRate,
			Duration: cfg.Duration,
			Workers:  cfg.Clients,
			Seed:     cfg.Seed,
		}, func() error {
			queryMu.Lock()
			src := mix[queryNext%len(mix)]
			queryNext++
			queryMu.Unlock()
			_, err := c.QueryContext(context.Background(), src,
				sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: cfg.Method}})
			return err
		})
	}()
	go func() {
		defer wg.Done()
		// Mutations run on a single worker: the write path serializes on
		// the corpus ingest lock, so extra workers would only misreport
		// queueing as commit latency.
		mres, merr = loadgen.Run(loadgen.Config{
			Rate:     cfg.MutateRate,
			Duration: cfg.Duration,
			Workers:  1,
			Seed:     cfg.Seed + 1,
		}, mutateOnce)
	}()
	wg.Wait()
	if qerr != nil {
		return nil, qerr
	}
	if merr != nil {
		return nil, merr
	}
	mutErrs = mres.Errors

	res.Queries = qres.Completed
	res.QueryErrors = qres.Errors
	res.QueryRateOut = qres.Throughput
	res.QueryP50 = qres.P50.String()
	res.QueryP95 = qres.P95.String()
	res.QueryP99 = qres.P99.String()
	res.Inserts = led.inserts
	res.Replaces = led.replaces
	res.Deletes = led.deletes
	res.MutationErrors = mutErrs
	res.MutateRateOut = mres.Throughput
	res.MutateP50 = mres.P50.String()
	res.MutateP95 = mres.P95.String()
	res.MutateMax = mres.Max.String()

	ist := c.IngestStats()
	res.FinalDocs = c.NumDocs()
	res.LedgerDocs = cfg.Docs + len(led.live)
	res.WALPages = ist.WALPages
	res.Compactions = ist.Compactions
	res.BrokenShards = ist.BrokenShards
	res.DownReplicas = ist.DownReplicas

	// Incremental-vs-rebuilt statistics: the same pattern must plan
	// identically (and count the same matches) before and after a
	// ground-up statistics rebuild.
	res.StatsConsistent = true
	qo := sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: cfg.Method}}
	type planSnap struct {
		plan  string
		count int
	}
	before := make([]planSnap, len(mix))
	for i, src := range mix {
		r, err := c.QueryContext(context.Background(), src, qo)
		if err != nil {
			return nil, err
		}
		before[i] = planSnap{r.PlanText, r.Count}
	}
	c.RebuildStats()
	for i, src := range mix {
		r, err := c.QueryContext(context.Background(), src, qo)
		if err != nil {
			return nil, err
		}
		if r.PlanText != before[i].plan || r.Count != before[i].count {
			res.StatsConsistent = false
		}
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res.DrainClean = c.Drain(drainCtx) == nil
	return res, nil
}

// RenderChurnBench formats one churn run for the terminal.
func RenderChurnBench(r *ChurnBenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ingestion churn (%d initial docs / %d shards, %s, %.0f queries/s + %.0f mutations/s for %s)\n",
		r.Docs, r.Shards, r.Method, r.QueryRate, r.MutateRate, r.Duration)
	fmt.Fprintf(&sb, "queries: %d completed (%d errors)  %.1f/s  p50 %s  p95 %s  p99 %s\n",
		r.Queries, r.QueryErrors, r.QueryRateOut, r.QueryP50, r.QueryP95, r.QueryP99)
	fmt.Fprintf(&sb, "mutations: %d inserts  %d replaces  %d deletes (%d errors)  %.1f/s  p50 %s  p95 %s  max %s\n",
		r.Inserts, r.Replaces, r.Deletes, r.MutationErrors, r.MutateRateOut, r.MutateP50, r.MutateP95, r.MutateMax)
	fmt.Fprintf(&sb, "end state: %d docs (ledger %d)  %d WAL pages  %d compactions  stats consistent: %v  drain clean: %v\n",
		r.FinalDocs, r.LedgerDocs, r.WALPages, r.Compactions, r.StatsConsistent, r.DrainClean)
	return sb.String()
}
