package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sjos"
)

func newServer(t *testing.T) (*sjos.Database, *httptest.Server) {
	t.Helper()
	db, err := sjos.LoadXMLString(`<db>
	  <manager><name>alice</name><employee><name>bob</name></employee></manager>
	  <manager><name>carol</name><department><name>ops</name></department></manager>
	</db>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	cols := &collections{}
	cols.add("default", db.AsCorpus("staff.xml"))
	srv := httptest.NewServer(newMux(cols, sjos.MethodDPP))
	t.Cleanup(srv.Close)
	return db, srv
}

// newMultiServer serves two collections, the first of them multi-document.
func newMultiServer(t *testing.T) *httptest.Server {
	t.Helper()
	build := func(ids, srcs []string) *sjos.Corpus {
		b := sjos.NewCorpusBuilder(&sjos.CorpusOptions{Shards: 2})
		for i, id := range ids {
			if err := b.AddXMLString(id, srcs[i]); err != nil {
				t.Fatal(err)
			}
		}
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cols := &collections{}
	cols.add("staff", build([]string{"east", "west"}, []string{
		`<db><manager><name>alice</name></manager></db>`,
		`<db><manager><name>bob</name></manager><manager><name>eve</name></manager></db>`,
	}))
	cols.add("papers", build([]string{"p1"}, []string{
		`<db><article><title>joins</title></article></db>`,
	}))
	srv := httptest.NewServer(newMux(cols, sjos.MethodDPP))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestServeHealthz(t *testing.T) {
	_, srv := newServer(t)
	var h healthResponse
	getJSON(t, srv.URL+"/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("healthz status %q", h.Status)
	}
	shards, ok := h.Collections["default"]
	if !ok || len(shards) != 1 {
		t.Fatalf("healthz collections: %+v", h.Collections)
	}
	if shards[0].Docs != 1 || shards[0].Nodes == 0 {
		t.Fatalf("shard health: %+v", shards[0])
	}
}

func TestServeQuery(t *testing.T) {
	_, srv := newServer(t)
	var r queryResponse
	getJSON(t, srv.URL+"/query?q=//manager/name", &r)
	if r.Count != 2 || len(r.Matches) != 2 {
		t.Fatalf("response: %+v", r)
	}
	if r.Plan == "" || r.Trace != nil {
		t.Fatalf("plan/trace: %+v", r)
	}
	if r.Shards != 1 || len(r.Docs) != 2 || r.Docs[0] != "staff.xml" {
		t.Fatalf("corpus attribution: %+v", r)
	}
	found := false
	for _, row := range r.Matches {
		for _, cell := range row {
			if strings.Contains(cell, "alice") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("alice missing from matches: %+v", r.Matches)
	}
}

func TestServeQueryOptions(t *testing.T) {
	_, srv := newServer(t)
	var r queryResponse
	getJSON(t, srv.URL+"/query?q=//manager/name&count=1&trace=1&method=FP", &r)
	if r.Count != 2 || r.Matches != nil {
		t.Fatalf("count=1 response: %+v", r)
	}
	if r.Trace == nil || r.Trace.Rows != 2 {
		t.Fatalf("trace=1 response trace: %+v", r.Trace)
	}
	getJSON(t, srv.URL+"/query?q=//manager/name&limit=1", &r)
	if len(r.Matches) != 1 {
		t.Fatalf("limit=1 matches: %+v", r.Matches)
	}
}

func TestServeQueryErrors(t *testing.T) {
	_, srv := newServer(t)
	for path, want := range map[string]int{
		"/query":                        http.StatusBadRequest,
		"/query?q=///bad[":              http.StatusBadRequest,
		"/query?q=//a&method=BOGUS":     http.StatusBadRequest,
		"/query?q=//a&limit=-1":         http.StatusBadRequest,
		"/collections/nope/query?q=//a": http.StatusNotFound,
		"/collections/nope/metrics":     http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestServeCollections(t *testing.T) {
	srv := newMultiServer(t)
	var infos []collectionInfo
	getJSON(t, srv.URL+"/collections", &infos)
	if len(infos) != 2 || infos[0].Name != "staff" || infos[1].Name != "papers" {
		t.Fatalf("collections: %+v", infos)
	}
	if infos[0].Docs != 2 || infos[0].Shards != 2 || infos[0].Nodes == 0 {
		t.Fatalf("staff info: %+v", infos[0])
	}

	// Named query: results grouped by document in insertion order, with
	// document attribution.
	var r queryResponse
	getJSON(t, srv.URL+"/collections/staff/query?q=//manager/name", &r)
	if r.Count != 3 || len(r.Matches) != 3 || len(r.Docs) != 3 {
		t.Fatalf("staff query: %+v", r)
	}
	if r.Docs[0] != "east" || r.Docs[1] != "west" || r.Docs[2] != "west" {
		t.Fatalf("document order: %v", r.Docs)
	}

	// The other collection answers independently.
	getJSON(t, srv.URL+"/collections/papers/query?q=//article/title", &r)
	if r.Count != 1 || r.Docs[0] != "p1" {
		t.Fatalf("papers query: %+v", r)
	}

	// Per-collection metrics and healthz cover both.
	resp, err := http.Get(srv.URL + "/collections/staff/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "sjos_queries_total") {
		t.Fatalf("staff metrics: %s", body)
	}
	var h healthResponse
	getJSON(t, srv.URL+"/healthz", &h)
	// Both collections were built with 2 shards; papers' single document
	// leaves one of its shards empty but still reported.
	if len(h.Collections["staff"]) != 2 || len(h.Collections["papers"]) != 2 {
		t.Fatalf("healthz: %+v", h.Collections)
	}
	var paperDocs int
	for _, sh := range h.Collections["papers"] {
		paperDocs += sh.Docs
	}
	if paperDocs != 1 {
		t.Fatalf("papers healthz docs = %d, want 1", paperDocs)
	}
}

func TestServeMetrics(t *testing.T) {
	_, srv := newServer(t)
	var r queryResponse
	getJSON(t, srv.URL+"/query?q=//manager/name", &r)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{"sjos_queries_total 1", "sjos_plancache_misses_total 1", "sjos_pool_resident_pages"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

func TestServeSlow(t *testing.T) {
	db, srv := newServer(t)
	db.SetSlowQueryLog(time.Nanosecond, nil)
	var r queryResponse
	getJSON(t, srv.URL+"/query?q=//manager/name", &r)
	var entries []sjos.SlowQueryEntry
	getJSON(t, srv.URL+"/slow", &entries)
	if len(entries) != 1 {
		t.Fatalf("%d slow entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Fingerprint == "" || e.Matches != 2 || e.Trace == nil {
		t.Fatalf("slow entry: %+v", e)
	}
}

// TestServeShedsLoad: admission errors surface as 503 + Retry-After, not 400.
func TestServeShedsLoad(t *testing.T) {
	db, err := sjos.LoadXMLString(`<db><manager><name>alice</name></manager></db>`,
		&sjos.Options{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	cols := &collections{}
	cols.add("default", db.AsCorpus("solo"))
	srv := httptest.NewServer(newMux(cols, sjos.MethodDPP))
	t.Cleanup(srv.Close)
	// Draining with nothing in flight completes instantly and flips every
	// later arrival into the shed path — through the shared admission
	// controller, the corpus view drains with the database.
	if err := db.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/query?q=//manager/name")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestBuildCollectionsSpecErrors(t *testing.T) {
	rep := replication{perShard: 1}
	for _, spec := range []string{"noequals", "=pers", "a=pers:0", "a=pers:x"} {
		if _, err := buildCollections(spec, "", "", 1, 0, 1, 0, 0, rep, writeConfig{}); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if _, err := buildCollections("", "", "", 1, 0, 1, 0, 0, rep, writeConfig{}); err == nil {
		t.Error("empty read-only source accepted")
	}
	// A writable server may start with no source at all: it serves an empty
	// default collection that is populated over HTTP.
	cols, err := buildCollections("", "", "", 1, 0, 1, 0, 0, rep, writeConfig{enabled: true})
	if err != nil {
		t.Fatalf("empty writable source rejected: %v", err)
	}
	if c := cols.def(); c.NumDocs() != 0 || !c.IngestEnabled() {
		t.Fatalf("empty writable collection: docs=%d ingest=%v", c.NumDocs(), c.IngestEnabled())
	}
}

func TestParseHedge(t *testing.T) {
	cases := []struct {
		replicas int
		hedge    string
		want     replication
		wantErr  bool
	}{
		{1, "auto", replication{perShard: 1}, false},
		{2, "", replication{perShard: 2}, false},
		{2, "off", replication{perShard: 2, hedgeOff: true}, false},
		{3, "2ms", replication{perShard: 3, hedgeDelay: 2 * time.Millisecond}, false},
		{0, "auto", replication{}, true},
		{2, "bogus", replication{}, true},
		{2, "-1ms", replication{}, true},
	}
	for _, tc := range cases {
		got, err := parseHedge(tc.replicas, tc.hedge)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseHedge(%d, %q): accepted, want error", tc.replicas, tc.hedge)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseHedge(%d, %q): %v", tc.replicas, tc.hedge, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseHedge(%d, %q) = %+v, want %+v", tc.replicas, tc.hedge, got, tc.want)
		}
	}
}

// do issues a bodyless or XML-bodied request and returns the response,
// decoding JSON into v when v is non-nil and the status is 200.
func do(t *testing.T, method, url, body string, v any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// newWritableServer serves one empty writable collection over in-memory WALs.
func newWritableServer(t *testing.T) *httptest.Server {
	t.Helper()
	cols, err := buildCollections("", "", "", 1, 2, 1, 0, 0,
		replication{perShard: 1}, writeConfig{enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(cols, sjos.MethodDPP))
	t.Cleanup(srv.Close)
	return srv
}

// TestServeWrites drives the full write surface over HTTP: insert and
// replace via PUT, DELETE, /ingest introspection, and the query path
// observing every mutation.
func TestServeWrites(t *testing.T) {
	srv := newWritableServer(t)
	var wr writeResponse
	if resp := do(t, "PUT", srv.URL+"/docs/a", `<db><manager><name>alice</name></manager></db>`, &wr); resp.StatusCode != 200 {
		t.Fatalf("PUT a: status %d", resp.StatusCode)
	}
	if wr.Op != "insert" || wr.Docs != 1 {
		t.Fatalf("PUT a response: %+v", wr)
	}
	do(t, "PUT", srv.URL+"/docs/b", `<db><manager><name>bob</name></manager></db>`, &wr)

	var qr queryResponse
	getJSON(t, srv.URL+"/query?q=//manager/name", &qr)
	if qr.Count != 2 {
		t.Fatalf("after 2 inserts: count %d, want 2", qr.Count)
	}

	// PUT on an existing ID is a replace.
	if resp := do(t, "PUT", srv.URL+"/docs/a", `<db><manager><name>ann</name></manager><manager><name>al</name></manager></db>`, &wr); resp.StatusCode != 200 {
		t.Fatalf("PUT a (replace): status %d", resp.StatusCode)
	}
	if wr.Op != "replace" || wr.Docs != 2 {
		t.Fatalf("replace response: %+v", wr)
	}
	getJSON(t, srv.URL+"/query?q=//manager/name", &qr)
	if qr.Count != 3 {
		t.Fatalf("after replace: count %d, want 3", qr.Count)
	}

	if resp := do(t, "DELETE", srv.URL+"/docs/b", "", &wr); resp.StatusCode != 200 {
		t.Fatalf("DELETE b: status %d", resp.StatusCode)
	}
	if wr.Op != "delete" || wr.Docs != 1 {
		t.Fatalf("delete response: %+v", wr)
	}
	getJSON(t, srv.URL+"/query?q=//manager/name", &qr)
	if qr.Count != 2 {
		t.Fatalf("after delete: count %d, want 2", qr.Count)
	}

	var ist sjos.CorpusIngestStats
	getJSON(t, srv.URL+"/ingest", &ist)
	if ist.Docs != 1 || ist.WALPages == 0 || ist.BrokenShards != 0 {
		t.Fatalf("/ingest: %+v", ist)
	}
}

// TestServeWriteErrors checks the HTTP mapping of write-path failures.
func TestServeWriteErrors(t *testing.T) {
	srv := newWritableServer(t)
	// Bad XML is the client's fault.
	if resp := do(t, "PUT", srv.URL+"/docs/x", `<open>`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad XML: status %d, want 400", resp.StatusCode)
	}
	// Deleting a document that never existed is 404.
	if resp := do(t, "DELETE", srv.URL+"/docs/ghost", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE ghost: status %d, want 404", resp.StatusCode)
	}

	// A read-only collection refuses the method entirely.
	db, err := sjos.LoadXMLString(`<db><a/></db>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	cols := &collections{}
	cols.add("default", db.AsCorpus("ro"))
	ro := httptest.NewServer(newMux(cols, sjos.MethodDPP))
	t.Cleanup(ro.Close)
	if resp := do(t, "PUT", ro.URL+"/docs/x", `<db><a/></db>`, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("read-only PUT: status %d, want 405", resp.StatusCode)
	}
}

// TestServeWriteRecovery round-trips durable WALs through a server restart:
// documents PUT into the first server are served by a second one built over
// the same -waldir.
func TestServeWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	wr := writeConfig{enabled: true, dir: dir}
	boot := func() *httptest.Server {
		cols, err := buildCollections("", "", "", 1, 2, 1, 0, 0, replication{perShard: 1}, wr)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(newMux(cols, sjos.MethodDPP))
		t.Cleanup(srv.Close)
		return srv
	}
	srv := boot()
	do(t, "PUT", srv.URL+"/docs/a", `<db><manager><name>alice</name></manager></db>`, nil)
	do(t, "PUT", srv.URL+"/docs/b", `<db><manager><name>bob</name></manager></db>`, nil)
	do(t, "DELETE", srv.URL+"/docs/a", "", nil)
	srv.Close()

	srv2 := boot()
	var qr queryResponse
	getJSON(t, srv2.URL+"/query?q=//manager/name", &qr)
	if qr.Count != 1 || len(qr.Docs) != 1 || qr.Docs[0] != "b" {
		t.Fatalf("after recovery: %+v", qr)
	}
	// The recovered server keeps accepting writes.
	if resp := do(t, "PUT", srv2.URL+"/docs/c", `<db><manager><name>carol</name></manager></db>`, nil); resp.StatusCode != 200 {
		t.Fatalf("post-recovery PUT: status %d", resp.StatusCode)
	}
	getJSON(t, srv2.URL+"/query?q=//manager/name", &qr)
	if qr.Count != 2 {
		t.Fatalf("post-recovery count %d, want 2", qr.Count)
	}
}

// TestHealthzReplicas exercises the serving path against a replicated
// collection: /healthz must expose every replica's routing state, and
// queries must still produce correct results through hedged routing.
func TestHealthzReplicas(t *testing.T) {
	c, err := buildDatasetCorpus("default", "pers", 2, 2, 1, sjos.Options{},
		replication{perShard: 2, hedgeDelay: time.Millisecond}, writeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cols := &collections{}
	cols.add("default", c)
	srv := httptest.NewServer(newMux(cols, sjos.MethodDPP))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	shards := hr.Collections["default"]
	if len(shards) == 0 {
		t.Fatal("no shards in /healthz")
	}
	populated := 0
	for _, sh := range shards {
		if sh.Docs == 0 {
			continue // empty shards carry no stores, hence no replicas
		}
		populated++
		if len(sh.Replicas) != 2 {
			t.Fatalf("shard %d: %d replicas in /healthz, want 2", sh.Shard, len(sh.Replicas))
		}
		for _, r := range sh.Replicas {
			if r.State != "healthy" {
				t.Errorf("shard %d replica %d state %q, want healthy", sh.Shard, r.Replica, r.State)
			}
		}
	}
	if populated == 0 {
		t.Fatal("no populated shards in /healthz")
	}

	qr, err := http.Get(srv.URL + "/query?q=//manager//name&count=1")
	if err != nil {
		t.Fatal(err)
	}
	defer qr.Body.Close()
	if qr.StatusCode != http.StatusOK {
		t.Fatalf("query status %d, want 200", qr.StatusCode)
	}
	var q queryResponse
	if err := json.NewDecoder(qr.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Count == 0 {
		t.Fatal("replicated collection returned no matches")
	}
}
