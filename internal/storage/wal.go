package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The write-ahead log makes document ingestion crash-safe. Every mutation is
// one redo-only transaction appended to a dedicated page file before any
// store page is touched:
//
//	Begin{txid, op, docs} · PageImage{txid, page, bytes}* · Commit{txid}
//
// The records are byte-framed ([type][uvarint length][body]) and packed into
// sealed pages — the same CRC32-C page checksums the store uses, so a torn
// tail is detected exactly like a torn store page. Each transaction starts
// on a fresh page and its Commit record is its final bytes; a page holding
// committed bytes is never rewritten, so no later failure can damage an
// already-committed transaction.
//
// Crash safety argument: Append seals and writes the transaction's pages,
// then fsyncs (when the file supports it) before returning. Only after
// Append returns does the caller touch the store. A crash before the fsync
// completes leaves a tail that is missing pages, torn (checksum), or stale
// (epoch) — OpenWAL discards the incomplete transaction and the store
// rebuild sees the pre-commit state. A crash after Append returns replays
// the transaction from the log and the rebuild sees the post-commit state.
// There is no third outcome.
//
// Epochs order log generations within the file. Every page carries the
// epoch current at its write; a scan accepts pages only while epochs are
// non-decreasing. A failed or crashed Append can leave valid-checksummed
// pages beyond the logical tail; bumping the epoch (on append failure, and
// to max-seen+1 on every open) makes the next transaction's first page
// terminate the scan before any such stale page is reached.

// WALOp is the logical operation a WAL transaction carries.
type WALOp uint8

const (
	// WALInsert adds one document.
	WALInsert WALOp = 1
	// WALDelete removes one document (its WALDoc has a nil image).
	WALDelete WALOp = 2
	// WALReplace swaps one document's content.
	WALReplace WALOp = 3
	// WALSnapshot records the full live member set — the base state at log
	// creation, and the compacted state after a store compaction. Recovery
	// rebuilds from the last committed snapshot and replays only the
	// transactions after it, so a snapshot transaction carries no page
	// images: the rebuild re-derives the store deterministically.
	WALSnapshot WALOp = 4
)

func (op WALOp) String() string {
	switch op {
	case WALInsert:
		return "insert"
	case WALDelete:
		return "delete"
	case WALReplace:
		return "replace"
	case WALSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("WALOp(%d)", uint8(op))
}

// WALDoc names one document in a transaction, with its serialized image
// (xmltree.WriteImage bytes; nil for a delete).
type WALDoc struct {
	ID    string
	Image []byte
}

// WALPageImage is the after-image of one store page — the physical redo a
// recovery pass re-applies.
type WALPageImage struct {
	Page PageID
	Data Page
}

// WALTxn is one committed transaction as OpenWAL returns it.
type WALTxn struct {
	ID     uint64
	Op     WALOp
	Docs   []WALDoc
	Images []WALPageImage
}

// WAL record and page framing constants.
const (
	walRecBegin     = 1
	walRecPageImage = 2
	walRecCommit    = 3

	// Page payload layout: [epoch uint32][used uint16][record bytes].
	walPageHdr = 6
	walPageCap = PayloadSize - walPageHdr
)

// ErrWALBroken marks a WAL whose append path failed in a way that leaves
// durability ambiguous (an fsync error after pages were written). The log
// refuses further appends; reopening re-establishes the committed state.
var ErrWALBroken = errors.New("storage: wal broken, reopen to recover")

type syncer interface{ Sync() error }

// WAL is a redo-only write-ahead log over a dedicated page file. Methods
// must be serialized by the caller (the ingestion layer's writer mutex).
type WAL struct {
	file   PageFile
	tail   PageID // next fresh page
	epoch  uint32
	nextTx uint64
	broken bool
}

// OpenWAL opens (or creates, when the file is empty) a write-ahead log and
// returns the committed transactions in commit order. Incomplete trailing
// transactions — missing pages, torn pages caught by checksum, stale pages
// from an earlier epoch — are discarded: the scan stops at the first page
// that fails verification and at the first transaction with no Commit
// record, which by the append protocol can only be the unfinished tail.
func OpenWAL(file PageFile) (*WAL, []WALTxn, error) {
	w := &WAL{file: file, epoch: 1, nextTx: 1}

	// Accept the longest prefix of checksum-valid, epoch-non-decreasing
	// pages.
	var pages []*Page
	lastEpoch := uint32(0)
	maxEpoch := uint32(0)
	n := file.NumPages()
	for id := 0; id < n; id++ {
		var p Page
		if err := file.ReadPage(PageID(id), &p); err != nil {
			break
		}
		if err := VerifyPage(PageID(id), &p); err != nil {
			break
		}
		epoch := binary.LittleEndian.Uint32(p[PageHeaderSize:])
		if epoch < lastEpoch {
			break
		}
		lastEpoch = epoch
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
		cp := p
		pages = append(pages, &cp)
	}

	var txns []WALTxn
	maxTx := uint64(0)
	next := PageID(0) // first page of the next transaction
	for int(next) < len(pages) {
		txn, end, err := parseWALTxn(pages, int(next))
		if err != nil {
			break // unfinished tail transaction: discard
		}
		txns = append(txns, txn)
		if txn.ID > maxTx {
			maxTx = txn.ID
		}
		next = PageID(end)
	}

	w.tail = next
	w.epoch = maxEpoch + 1
	w.nextTx = maxTx + 1
	return w, txns, nil
}

// Tail returns the page index where the next transaction will start.
func (w *WAL) Tail() PageID { return w.tail }

// Append durably logs one transaction and returns its id. The transaction
// is serialized onto fresh pages (each sealed with the page checksum) and
// the file is fsynced when it supports Sync; only then does Append return.
// On a write failure nothing is committed: the in-memory tail stays put and
// the epoch is bumped so the stale partial pages can never be mistaken for
// log content. On an fsync failure durability is ambiguous and the WAL
// refuses further appends (ErrWALBroken) — the caller must reopen.
func (w *WAL) Append(op WALOp, docs []WALDoc, images []WALPageImage) (uint64, error) {
	if w.broken {
		return 0, ErrWALBroken
	}
	txid := w.nextTx

	var buf []byte
	buf = appendWALRecord(buf, walRecBegin, encodeWALBegin(txid, op, docs))
	for i := range images {
		buf = appendWALRecord(buf, walRecPageImage, encodeWALPageImage(txid, &images[i]))
	}
	buf = appendWALRecord(buf, walRecCommit, binary.AppendUvarint(nil, txid))

	// Split across fresh pages: committed bytes are never rewritten.
	page := w.tail
	for off := 0; off < len(buf); {
		n := len(buf) - off
		if n > walPageCap {
			n = walPageCap
		}
		var p Page
		binary.LittleEndian.PutUint32(p[PageHeaderSize:], w.epoch)
		binary.LittleEndian.PutUint16(p[PageHeaderSize+4:], uint16(n))
		copy(p[PageHeaderSize+walPageHdr:], buf[off:off+n])
		SealPage(page, &p)
		if err := w.file.WritePage(page, &p); err != nil {
			w.epoch++ // invalidate the partial tail
			return 0, fmt.Errorf("storage: wal append tx %d: %w", txid, err)
		}
		off += n
		page++
	}
	if s, ok := w.file.(syncer); ok {
		if err := s.Sync(); err != nil {
			// The pages may or may not have reached the disk: ambiguous.
			w.broken = true
			return 0, fmt.Errorf("storage: wal fsync tx %d: %w (%v)", txid, err, ErrWALBroken)
		}
	}
	w.tail = page
	w.nextTx = txid + 1
	return txid, nil
}

// appendWALRecord frames one record onto buf.
func appendWALRecord(buf []byte, typ byte, body []byte) []byte {
	buf = append(buf, typ)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

func encodeWALBegin(txid uint64, op WALOp, docs []WALDoc) []byte {
	b := binary.AppendUvarint(nil, txid)
	b = append(b, byte(op))
	b = binary.AppendUvarint(b, uint64(len(docs)))
	for _, d := range docs {
		b = binary.AppendUvarint(b, uint64(len(d.ID)))
		b = append(b, d.ID...)
		b = binary.AppendUvarint(b, uint64(len(d.Image)))
		b = append(b, d.Image...)
	}
	return b
}

func encodeWALPageImage(txid uint64, im *WALPageImage) []byte {
	b := binary.AppendUvarint(nil, txid)
	b = binary.AppendUvarint(b, uint64(im.Page))
	return append(b, im.Data[:]...)
}

// walStream reads the record byte stream of one transaction across its
// page run.
type walStream struct {
	pages []*Page
	pi    int // current page index
	off   int // offset into the current page's used bytes
}

func (s *walStream) used() int {
	p := s.pages[s.pi]
	return int(binary.LittleEndian.Uint16(p[PageHeaderSize+4:]))
}

var errWALTruncated = errors.New("storage: wal: truncated record stream")

func (s *walStream) ReadByte() (byte, error) {
	for {
		if s.pi >= len(s.pages) {
			return 0, errWALTruncated
		}
		if s.off < s.used() {
			b := s.pages[s.pi][PageHeaderSize+walPageHdr+s.off]
			s.off++
			return b, nil
		}
		s.pi++
		s.off = 0
	}
}

func (s *walStream) read(n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for len(out) < n {
		if s.pi >= len(s.pages) {
			return nil, errWALTruncated
		}
		u := s.used()
		if s.off >= u {
			s.pi++
			s.off = 0
			continue
		}
		take := n - len(out)
		if avail := u - s.off; take > avail {
			take = avail
		}
		p := s.pages[s.pi]
		out = append(out, p[PageHeaderSize+walPageHdr+s.off:PageHeaderSize+walPageHdr+s.off+take]...)
		s.off += take
	}
	return out, nil
}

func (s *walStream) uvarint() (uint64, error) {
	return binary.ReadUvarint(s)
}

// parseWALTxn parses one transaction starting at page index first. It
// returns the transaction and the page index just past its last record. Any
// malformation — truncation, a foreign record type, a txid mismatch, or
// pages ending before the Commit record — yields an error: the transaction
// never committed.
func parseWALTxn(pages []*Page, first int) (WALTxn, int, error) {
	s := &walStream{pages: pages, pi: first}
	var txn WALTxn
	seenBegin := false
	for {
		typ, err := s.ReadByte()
		if err != nil {
			return txn, 0, err
		}
		bodyLen, err := s.uvarint()
		if err != nil {
			return txn, 0, err
		}
		if bodyLen > uint64(len(pages)-first)*uint64(walPageCap) {
			return txn, 0, errWALTruncated
		}
		body, err := s.read(int(bodyLen))
		if err != nil {
			return txn, 0, err
		}
		switch typ {
		case walRecBegin:
			if seenBegin {
				return txn, 0, fmt.Errorf("storage: wal: duplicate begin")
			}
			seenBegin = true
			if err := decodeWALBegin(body, &txn); err != nil {
				return txn, 0, err
			}
		case walRecPageImage:
			if !seenBegin {
				return txn, 0, fmt.Errorf("storage: wal: page image before begin")
			}
			im, txid, err := decodeWALPageImage(body)
			if err != nil {
				return txn, 0, err
			}
			if txid != txn.ID {
				return txn, 0, fmt.Errorf("storage: wal: page image for tx %d inside tx %d", txid, txn.ID)
			}
			txn.Images = append(txn.Images, im)
		case walRecCommit:
			if !seenBegin {
				return txn, 0, fmt.Errorf("storage: wal: commit before begin")
			}
			txid, n := binary.Uvarint(body)
			if n <= 0 || txid != txn.ID {
				return txn, 0, fmt.Errorf("storage: wal: bad commit for tx %d", txn.ID)
			}
			// Commit is the transaction's final record: the next
			// transaction starts on the next page.
			end := s.pi
			if s.off > 0 {
				end++
			}
			return txn, end, nil
		default:
			return txn, 0, fmt.Errorf("storage: wal: unknown record type %d", typ)
		}
	}
}

type byteStream struct {
	b   []byte
	off int
}

func (s *byteStream) ReadByte() (byte, error) {
	if s.off >= len(s.b) {
		return 0, errWALTruncated
	}
	b := s.b[s.off]
	s.off++
	return b, nil
}

func (s *byteStream) uvarint() (uint64, error) { return binary.ReadUvarint(s) }

func (s *byteStream) read(n int) ([]byte, error) {
	if n < 0 || s.off+n > len(s.b) {
		return nil, errWALTruncated
	}
	out := s.b[s.off : s.off+n]
	s.off += n
	return out, nil
}

func decodeWALBegin(body []byte, txn *WALTxn) error {
	s := &byteStream{b: body}
	txid, err := s.uvarint()
	if err != nil {
		return err
	}
	opb, err := s.ReadByte()
	if err != nil {
		return err
	}
	ndocs, err := s.uvarint()
	if err != nil {
		return err
	}
	if ndocs > uint64(len(body)) {
		return errWALTruncated
	}
	txn.ID = txid
	txn.Op = WALOp(opb)
	txn.Docs = make([]WALDoc, 0, ndocs)
	for i := uint64(0); i < ndocs; i++ {
		idLen, err := s.uvarint()
		if err != nil {
			return err
		}
		id, err := s.read(int(idLen))
		if err != nil {
			return err
		}
		imLen, err := s.uvarint()
		if err != nil {
			return err
		}
		im, err := s.read(int(imLen))
		if err != nil {
			return err
		}
		var image []byte
		if imLen > 0 {
			image = append([]byte(nil), im...)
		}
		txn.Docs = append(txn.Docs, WALDoc{ID: string(id), Image: image})
	}
	if s.off != len(body) {
		return fmt.Errorf("storage: wal: begin record has %d trailing bytes", len(body)-s.off)
	}
	return nil
}

func decodeWALPageImage(body []byte) (WALPageImage, uint64, error) {
	s := &byteStream{b: body}
	txid, err := s.uvarint()
	if err != nil {
		return WALPageImage{}, 0, err
	}
	pg, err := s.uvarint()
	if err != nil {
		return WALPageImage{}, 0, err
	}
	data, err := s.read(PageSize)
	if err != nil {
		return WALPageImage{}, 0, err
	}
	if s.off != len(body) {
		return WALPageImage{}, 0, fmt.Errorf("storage: wal: page image has trailing bytes")
	}
	im := WALPageImage{Page: PageID(pg)}
	copy(im.Data[:], data)
	return im, txid, nil
}
