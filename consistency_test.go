package sjos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestGrandConsistency is the repository's widest property test: on random
// documents and random patterns, every execution engine must agree —
// the optimizers' plans (cost-based and greedy), the DPP′ ablation, the
// holistic TwigStack join, and (indirectly, through the per-package suites)
// the brute-force reference. Counts, multisets of matches and the
// ordered-output contract are all checked through the public facade.
func TestGrandConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(987))
	tags := []string{"a", "b", "c", "d"}
	methods := []Method{MethodDP, MethodDPP, MethodDPPNoLookahead, MethodDPAPEB, MethodDPAPLD, MethodFP, MethodGreedy}
	for trial := 0; trial < 12; trial++ {
		doc := randomXML(rng, 30+rng.Intn(250), tags)
		db, err := LoadXMLString(doc, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 0; q < 6; q++ {
			pat := randomTwig(rng, tags, 2+rng.Intn(4))
			var want []string
			for mi, m := range methods {
				res, err := db.QueryPattern(pat, m)
				if err != nil {
					t.Fatalf("trial %d %v on %s: %v", trial, m, pat, err)
				}
				got := canonicalize(res.Matches)
				if mi == 0 {
					want = got
					continue
				}
				if !equalStrings(got, want) {
					t.Fatalf("trial %d: %v disagrees on %s: %d vs %d matches",
						trial, m, pat, len(got), len(want))
				}
			}
			tw, err := db.TwigStack(pat)
			if err != nil {
				t.Fatalf("trial %d TwigStack on %s: %v", trial, pat, err)
			}
			if !equalStrings(canonicalize(tw), want) {
				t.Fatalf("trial %d: TwigStack disagrees on %s: %d vs %d",
					trial, pat, len(tw), len(want))
			}
		}
	}
}

// randomXML builds a random document as XML text, exercising the parse path
// too.
func randomXML(rng *rand.Rand, n int, tags []string) string {
	var sb strings.Builder
	var gen func(budget int) int
	gen = func(budget int) int {
		used := 0
		for used < budget {
			take := 1
			if budget-used > 1 {
				take = 1 + rng.Intn(budget-used)
			}
			tag := tags[rng.Intn(len(tags))]
			sb.WriteString("<" + tag + ">")
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&sb, "%d", rng.Intn(50))
			}
			gen(take - 1)
			sb.WriteString("</" + tag + ">")
			used += take
		}
		return used
	}
	sb.WriteString("<root>")
	gen(n)
	sb.WriteString("</root>")
	return sb.String()
}

// randomTwig builds a random pattern over the tag alphabet: a chain with
// occasional predicate branches; about half get an OrderBy node.
func randomTwig(rng *rand.Rand, tags []string, n int) *Pattern {
	var sb strings.Builder
	sb.WriteString("//" + tags[rng.Intn(len(tags))])
	for i := 1; i < n; i++ {
		tag := tags[rng.Intn(len(tags))]
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&sb, "[%s]", tag) // child-axis branch
		case 1:
			fmt.Fprintf(&sb, "[.//%s]", tag) // descendant-axis branch
		case 2:
			fmt.Fprintf(&sb, "/%s", tag) // extend chain, child
		default:
			fmt.Fprintf(&sb, "//%s", tag) // extend chain, descendant
		}
	}
	p := MustParsePattern(sb.String())
	if rng.Intn(2) == 0 {
		p.OrderBy = rng.Intn(p.N())
	}
	return p
}

func canonicalize(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		parts := make([]string, len(m))
		for j, id := range m {
			parts[j] = fmt.Sprint(id)
		}
		out[i] = strings.Join(parts, ",")
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
