package sjos

import (
	"context"
	"testing"
)

// BenchmarkObservabilityOverhead quantifies what the observability layer
// costs on the BenchmarkParallelExecute workload (Q.Pers.3.d, Pers ×100,
// count-only; EXPERIMENTS.md records the ratios):
//
//	raw       — the unmetered execution path (db.run), exactly what Run
//	            did before the observability layer existed
//	disabled  — db.Run with tracing off: the metrics registry's atomic
//	            counters are the only addition (acceptance bar: <5% vs raw)
//	traced    — db.Run with per-operator tracing on
//
// A white-box benchmark (package sjos) so the raw lane can bypass the
// metering wrapper.
func BenchmarkObservabilityOverhead(b *testing.B) {
	db, err := GenerateDataset("pers", 1, 100, nil)
	if err != nil {
		b.Fatal(err)
	}
	pat := MustParsePattern("//manager[.//employee/name]//manager/department/name")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		b.Fatal(err)
	}
	want, err := db.run(context.Background(), pat, res.Plan, RunOptions{CountOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		label string
		opts  RunOptions
		fn    func(context.Context, *Pattern, *Plan, RunOptions) (*RunResult, error)
	}{
		{"raw", RunOptions{CountOnly: true}, db.run},
		{"disabled", RunOptions{CountOnly: true}, db.Run},
		{"traced", RunOptions{CountOnly: true, Trace: true}, db.Run},
	} {
		b.Run(v.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rr, err := v.fn(context.Background(), pat, res.Plan, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				if rr.Count != want.Count {
					b.Fatalf("count %d, want %d", rr.Count, want.Count)
				}
			}
		})
	}
}
